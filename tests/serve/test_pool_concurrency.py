"""Concurrent ``suggest_many``: overlap, isolation, and exact accounting.

The reply-dispatcher rewrite's contract, under test from the caller's
side: overlapping batches from different threads must not serialize on a
shared reply lock, a timeout in one batch must never bleed replies into
another, per-request worker errors must stay per-request, and the
``serve.pool.queue_depth`` gauge must return to exactly zero whatever
mixture of successes, failures and timeouts the callers produced.
"""

import os
import signal
import threading
import time

import pytest

from repro.baselines.base import SuggestRequest
from repro.logs.schema import QueryRecord
from repro.obs.registry import MetricsRegistry
from repro.serve.pool import SuggestError, SuggestWorkerPool

from tests.serve.conftest import SERVE_CONFIG


def _metric_value(registry, name):
    for entry in registry.snapshot()["metrics"]:
        if entry["name"] == name:
            return entry["value"]
    return None


def _requests_for(queries, k=8):
    return [SuggestRequest(query=query, k=k) for query in queries]


def _queries_routed_to(pool, queries, worker_id, n):
    picked = [q for q in queries if pool._route(q) == worker_id]
    assert len(picked) >= n, (
        f"synthetic log routes fewer than {n} probe queries to "
        f"worker {worker_id}"
    )
    return picked[:n]


class TestConcurrentCallers:
    def test_threaded_hammer_is_bit_identical_and_settles_depth(
        self, expander, multibipartite, single_suggester
    ):
        """≥4 threads × repeated batches: every result matches the
        single-process reference, and both the gauge and the live
        ``queue_depth`` property read exactly zero at quiescence."""
        n_threads, rounds = 4, 3
        slices = [
            multibipartite.queries[start::n_threads][:8]
            for start in range(n_threads)
        ]
        probe_sets = [_requests_for(chunk) for chunk in slices]
        expected = [
            single_suggester.suggest_batch(probes) for probes in probe_sets
        ]
        registry = MetricsRegistry()
        failures: list = []
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=2,
            registry=registry,
            prefix="t-hammer",
        ) as pool:
            barrier = threading.Barrier(n_threads)

            def hammer(thread_id: int) -> None:
                try:
                    barrier.wait(timeout=30)
                    for _ in range(rounds):
                        got = pool.suggest_many(probe_sets[thread_id])
                        if got != expected[thread_id]:
                            failures.append(
                                (thread_id, got, expected[thread_id])
                            )
                except Exception as exc:  # surfaced below, not swallowed
                    failures.append((thread_id, exc))

            threads = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not failures
            assert pool.queue_depth == 0
            assert _metric_value(registry, "serve.pool.queue_depth") == 0

    def test_overlapping_batches_do_not_serialize(
        self, expander, multibipartite
    ):
        """A batch stalled on worker 0 must not block a batch on worker 1.

        Deterministic, no sleep races: worker 0 is SIGSTOPped, a batch
        routed to it is dispatched from one thread (it cannot complete),
        and a batch routed to worker 1 must still complete while the
        first is pending — impossible under the old whole-call reply
        lock, where the second caller queued behind the first.
        """
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=2,
            prefix="t-overlap",
            ack_timeout=60.0,
        ) as pool:
            to_zero = _queries_routed_to(
                pool, multibipartite.queries, worker_id=0, n=3
            )
            to_one = _queries_routed_to(
                pool, multibipartite.queries, worker_id=1, n=3
            )
            stalled_done = threading.Event()
            stalled_result: list = []
            os.kill(pool._workers[0].pid, signal.SIGSTOP)
            try:
                def stalled_call() -> None:
                    stalled_result.append(
                        pool.suggest_many(_requests_for(to_zero))
                    )
                    stalled_done.set()

                stalled = threading.Thread(target=stalled_call)
                stalled.start()
                # The overlapping batch completes while the first caller
                # is still blocked waiting on the stopped worker.
                fast = pool.suggest_many(_requests_for(to_one))
                assert len(fast) == len(to_one)
                assert all(
                    result is not None and not isinstance(result, Exception)
                    for result in fast
                )
                assert not stalled_done.is_set()
            finally:
                os.kill(pool._workers[0].pid, signal.SIGCONT)
            assert stalled_done.wait(timeout=60)
            stalled.join(timeout=60)
            # The resumed batch finished normally — and independently.
            assert len(stalled_result) == 1
            assert len(stalled_result[0]) == len(to_zero)
            assert pool.queue_depth == 0

    def test_timed_out_batch_does_not_bleed_into_the_next(
        self, expander, multibipartite, single_suggester
    ):
        """A real timeout (not a synthetic stale envelope): the late
        reply that eventually surfaces must be drained, not delivered to
        a later batch, and the depth accounting must settle to zero."""
        probes = _requests_for(multibipartite.queries[:5])
        expected = single_suggester.suggest_batch(probes)
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=1,
            prefix="t-bleed",
            ack_timeout=1.5,
        ) as pool:
            os.kill(pool._workers[0].pid, signal.SIGSTOP)
            try:
                with pytest.raises((TimeoutError, RuntimeError)):
                    pool.suggest_many(probes)
            finally:
                os.kill(pool._workers[0].pid, signal.SIGCONT)
            # The worker now wakes up and sends the orphaned envelope;
            # the next batches must be answered by their own replies.
            assert pool.suggest_many(probes) == expected
            assert pool.suggest_many(probes) == expected
            deadline = time.monotonic() + 10
            while pool.queue_depth and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.queue_depth == 0


class TestPerRequestErrors:
    @staticmethod
    def _poisoned_request(query: str) -> SuggestRequest:
        # A context record whose timestamp is not a number blows up in
        # the worker's context-seed arithmetic — one request fails, the
        # worker survives.
        bad = QueryRecord(user_id="u0", query="ok text", timestamp="bad")
        return SuggestRequest(query=query, k=8, context=(bad,))

    def test_return_errors_isolates_the_failing_request(
        self, expander, multibipartite, single_suggester
    ):
        good = _requests_for(multibipartite.queries[:4])
        expected = single_suggester.suggest_batch(good)
        mixed = good[:2] + [
            self._poisoned_request(multibipartite.queries[0])
        ] + good[2:]
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=2,
            prefix="t-errs",
        ) as pool:
            results = pool.suggest_many(mixed, return_errors=True)
            assert results[:2] == expected[:2]
            assert results[3:] == expected[2:]
            failure = results[2]
            assert isinstance(failure, SuggestError)
            assert "TypeError" in failure.error
            assert failure.worker_id in (0, 1)
            # Siblings of the failed request were computed, not discarded.
            assert all(
                not isinstance(result, SuggestError)
                for result in results[:2] + results[3:]
            )
            assert pool.queue_depth == 0

    def test_default_mode_still_raises_with_the_worker_traceback(
        self, expander, multibipartite, single_suggester
    ):
        good = _requests_for(multibipartite.queries[:4])
        expected = single_suggester.suggest_batch(good)
        mixed = [self._poisoned_request(multibipartite.queries[0])] + good
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=1,
            prefix="t-raise",
        ) as pool:
            with pytest.raises(RuntimeError, match="TypeError"):
                pool.suggest_many(mixed)
            # The pool is not poisoned: the same workers keep serving.
            assert pool.suggest_many(good) == expected
            assert pool.queue_depth == 0
