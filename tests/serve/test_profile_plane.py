"""Shared profile plane: zero-copy attach, pooled bit-identity, swaps."""

import os
import threading

import numpy as np
import pytest

from repro.baselines.base import SuggestRequest
from repro.core import PQSDA
from repro.logs.schema import QueryRecord
from repro.personalize.profiles import ArrayProfileStore
from repro.serve.pool import SuggestWorkerPool
from repro.serve.profile_plane import SharedProfileStore, attach_profiles

from tests.serve.conftest import SERVE_PERSONAL_CONFIG


def _dev_shm_entries(prefix):
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir("/dev/shm") if name.startswith(prefix)]


@pytest.fixture(scope="module")
def profile_arrays(profile_store):
    return profile_store.to_arrays()


@pytest.fixture(scope="module")
def personal_requests(multibipartite, profile_store):
    """Probes cycling profiled users, plus unprofiled and anonymous ones."""
    users = profile_store.user_ids
    requests = [
        SuggestRequest(query=query, k=8, user_id=users[i % len(users)])
        for i, query in enumerate(multibipartite.queries[:15])
    ]
    requests.append(
        SuggestRequest(query=multibipartite.queries[0], k=8, user_id="ghost")
    )
    requests.append(SuggestRequest(query=multibipartite.queries[1], k=8))
    return requests


@pytest.fixture(scope="module")
def personal_expected(personal_suggester, personal_requests):
    return personal_suggester.suggest_batch(personal_requests)


# -- raw plane round trip --------------------------------------------------------


def test_attached_plane_is_zero_copy_and_bit_identical(
    profile_store, profile_arrays
):
    store = SharedProfileStore.publish(profile_arrays, prefix="t-pplane")
    plane = attach_profiles(store.meta)
    try:
        assert plane.shares_memory()
        attached = plane.store
        assert set(attached.user_ids) == set(profile_store.user_ids)
        queries = ["sun java", "travel deals", "totally unseen query", ""]
        for user_id in profile_store.user_ids[:5] + ["ghost"]:
            for query in queries:
                assert attached.score(user_id, query) == profile_store.score(
                    user_id, query
                )
        # The theta rows the profiles expose are views into the attached
        # arrays (themselves views into the segment, per shares_memory()).
        user = profile_store.user_ids[0]
        assert np.shares_memory(
            attached.arrays.theta, attached.profile(user).theta
        )
    finally:
        plane.close()
        store.unlink()
        store.close()
    assert _dev_shm_entries(store.segment_name) == []


def test_batch_scoring_matches_per_query(profile_store, profile_arrays):
    attached = ArrayProfileStore(profile_arrays)
    user = profile_store.user_ids[0]
    candidates = ["sun java", "sun java", "travel", "unseen thing", ""]
    batch = attached.score_candidates(user, candidates)
    for query in candidates:
        assert batch[query] == profile_store.score(user, query)


# -- pooled personalized serving -------------------------------------------------


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_pooled_personalized_bit_identical(
    personal_suggester, personal_requests, personal_expected, n_workers
):
    with SuggestWorkerPool.from_suggester(
        personal_suggester,
        n_workers=n_workers,
        prefix=f"t-pers{n_workers}",
    ) as pool:
        assert pool.serves_profiles
        assert pool.suggest_many(personal_requests) == personal_expected
        # Warm second pass — still identical.
        assert pool.suggest_many(personal_requests) == personal_expected
        stats = pool.stats()
        assert all(w.profile_shares_memory for w in stats.workers)
        assert stats.profile_users == len(personal_suggester.profiles)


def test_unprofiled_user_served_as_anonymous(
    personal_suggester, multibipartite
):
    query = multibipartite.queries[3]
    anonymous = personal_suggester.suggest(query, k=8)
    with SuggestWorkerPool.from_suggester(
        personal_suggester, n_workers=1, prefix="t-ghost"
    ) as pool:
        assert pool.suggest(query, k=8, user_id="no-such-user") == anonymous


def test_personalized_requests_bypass_hot_tier(
    personal_suggester, profile_store, multibipartite, synthetic_log
):
    from repro.core.suggester import head_queries

    hot = head_queries(synthetic_log, 10)
    user = profile_store.user_ids[0]
    probe = hot[0]
    with SuggestWorkerPool.from_suggester(
        personal_suggester,
        n_workers=1,
        prefix="t-bypass",
        hot_queries=hot,
    ) as pool:
        assert pool.hot_entries > 0
        # Profiled user: must take the worker path (Borda fusion)...
        expected = personal_suggester.suggest(probe, k=8, user_id=user)
        assert pool.suggest(probe, k=8, user_id=user) == expected
        assert pool.stats().hot_hits == 0
        # ...while unprofiled users' requests stay hot-eligible.
        pool.suggest(probe, k=8, user_id="ghost")
        pool.suggest(probe, k=8)
        assert pool.stats().hot_hits == 2


# -- generation swaps ------------------------------------------------------------


@pytest.fixture(scope="module")
def folded_store(profile_store, profile_arrays, multibipartite):
    base = ArrayProfileStore(profile_arrays)
    user = profile_store.user_ids[0]
    records = [
        QueryRecord(
            user_id=user,
            query=multibipartite.queries[i],
            timestamp=float(i),
            clicked_url="u",
        )
        for i in range(4)
    ]
    return base.fold_feedback(records)


def test_fold_feedback_is_deterministic_and_versioned(
    profile_arrays, folded_store, multibipartite, profile_store
):
    base = ArrayProfileStore(profile_arrays)
    user = profile_store.user_ids[0]
    records = [
        QueryRecord(
            user_id=user,
            query=multibipartite.queries[i],
            timestamp=float(i),
            clicked_url="u",
        )
        for i in range(4)
    ]
    again = base.fold_feedback(records)
    assert again.generation == folded_store.generation == 1
    assert np.array_equal(again.arrays.theta, folded_store.arrays.theta)
    assert np.array_equal(again.arrays.counts, folded_store.arrays.counts)
    # The receiver is untouched (copy-on-write).
    assert np.array_equal(base.arrays.theta, profile_arrays.theta)


def test_profile_swap_updates_all_workers_and_unlinks_old(
    personal_suggester, multibipartite, expander, folded_store, profile_store
):
    query = multibipartite.queries[2]
    user = profile_store.user_ids[0]
    after_single = PQSDA(
        multibipartite, expander, folded_store, SERVE_PERSONAL_CONFIG
    )
    expected_after = after_single.suggest(query, k=8, user_id=user)
    with SuggestWorkerPool.from_suggester(
        personal_suggester, n_workers=2, prefix="t-pswap"
    ) as pool:
        first = pool.profile_segment_name
        assert _dev_shm_entries(first) == [first]
        pool.publish_profiles(folded_store)
        assert pool.profile_generation == folded_store.generation
        # Old profile segment retired only after every worker acked.
        assert _dev_shm_entries(first) == []
        assert pool.suggest(query, k=8, user_id=user) == expected_after
        stats = pool.stats()
        assert all(
            w.profile_generation == folded_store.generation
            for w in stats.workers
        )
        assert all(w.profile_shares_memory for w in stats.workers)
    assert _dev_shm_entries("t-pswap") == []


def test_profile_swap_under_concurrent_suggests(
    personal_suggester, multibipartite, expander, folded_store, profile_store
):
    """Every answer during a swap equals one generation — never a blend."""
    user = profile_store.user_ids[0]
    queries = multibipartite.queries[:6]
    requests = [
        SuggestRequest(query=q, k=8, user_id=user) for q in queries
    ]
    before = personal_suggester.suggest_batch(requests)
    after_single = PQSDA(
        multibipartite, expander, folded_store, SERVE_PERSONAL_CONFIG
    )
    after = after_single.suggest_batch(requests)
    failures = []
    stop = threading.Event()

    with SuggestWorkerPool.from_suggester(
        personal_suggester, n_workers=2, prefix="t-pconc"
    ) as pool:

        def hammer():
            while not stop.is_set():
                got = pool.suggest_many(requests)
                for result, old, new in zip(got, before, after):
                    if result != old and result != new:
                        failures.append(result)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            pool.publish_profiles(folded_store)
        finally:
            stop.set()
            thread.join()
        assert not failures
        assert pool.suggest_many(requests) == after


def test_epoch_with_profiles_republishes_plane(
    personal_suggester, multibipartite, expander, folded_store, profile_store
):
    """``publish_epoch`` carries ``Epoch.profiles`` into the pool."""
    from repro.stream.epoch import Epoch

    user = profile_store.user_ids[0]
    query = multibipartite.queries[4]
    after_single = PQSDA(
        multibipartite, expander, folded_store, SERVE_PERSONAL_CONFIG
    )
    with SuggestWorkerPool.from_suggester(
        personal_suggester, n_workers=1, prefix="t-pepoch"
    ) as pool:
        epoch = Epoch(
            epoch_id=1,
            log=None,
            multibipartite=multibipartite,
            matrices=expander.matrices,
            expander=expander,
            touched_queries=frozenset(),
            profiles=folded_store,
        )
        pool.publish_epoch(epoch)
        assert pool.profile_generation == folded_store.generation
        assert pool.suggest(query, k=8, user_id=user) == after_single.suggest(
            query, k=8, user_id=user
        )
