"""Tests for the shared-memory matrix plane: zero-copy, parity, lifecycle."""

import os

import numpy as np
import pytest

from repro.core import PQSDA
from repro.graphs.multibipartite import BIPARTITE_KINDS
from repro.serve.shm import SharedMatrixStore, attach, hot_hash

from tests.serve.conftest import SERVE_CONFIG


@pytest.fixture()
def store(multibipartite, expander):
    store = SharedMatrixStore.publish(
        expander.matrices, expander, multibipartite, prefix="t-shm"
    )
    yield store
    store.unlink()
    store.close()


class TestRoundTrip:
    def test_matrices_identical(self, store, expander):
        plane = attach(store.meta)
        original = expander.matrices
        assert plane.matrices.queries == original.queries
        assert plane.matrices.query_index == original.query_index
        for kind in BIPARTITE_KINDS:
            for table in ("incidence", "gram"):
                ours = getattr(plane.matrices, table)[kind]
                theirs = getattr(original, table)[kind]
                assert ours.shape == theirs.shape
                assert np.array_equal(ours.indptr, theirs.indptr)
                assert np.array_equal(ours.indices, theirs.indices)
                assert np.array_equal(ours.data, theirs.data)
        plane.close()

    def test_walk_stacks_identical(self, store, expander):
        plane = attach(store.meta)
        for ours, theirs in zip(plane.expander.walk_stacks, expander.walk_stacks):
            assert np.array_equal(ours.data, theirs.tocsr().data)
            assert np.array_equal(ours.indices, theirs.tocsr().indices)
        plane.close()

    def test_views_are_shared_not_copies(self, store):
        plane = attach(store.meta)
        assert plane.shares_memory()
        plane.close()

    def test_views_are_read_only(self, store):
        plane = attach(store.meta)
        with pytest.raises(ValueError):
            plane.matrices.incidence["U"].data[0] = 99.0
        plane.close()

    def test_restrict_works_on_attached_matrices(self, store, expander):
        plane = attach(store.meta)
        chosen = list(range(10))
        ours = plane.matrices.restrict(chosen)
        theirs = expander.matrices.restrict(chosen)
        assert ours.queries == theirs.queries
        for kind in BIPARTITE_KINDS:
            assert np.array_equal(
                ours.affinity[kind].toarray(), theirs.affinity[kind].toarray()
            )
        plane.close()


class TestTermIndex:
    def test_queries_of_parity(self, store, multibipartite):
        plane = attach(store.meta)
        original = multibipartite.bipartite("T")
        shared = plane.representation.bipartite("T")
        assert shared.facets == original.facets
        for term in original.facets:
            assert shared.queries_of(term) == original.queries_of(term)
        plane.close()

    def test_facet_set_parity(self, store, multibipartite):
        plane = attach(store.meta)
        original = multibipartite.bipartite("T")
        shared = plane.representation.bipartite("T")
        for query in plane.representation.queries:
            assert shared.facet_set(query) == original.facet_set(query)
        assert shared.facet_set("never seen before") == frozenset()
        plane.close()

    def test_membership(self, store, multibipartite):
        plane = attach(store.meta)
        for query in multibipartite.queries[:5]:
            assert query in plane.representation
        assert "definitely not a logged query" not in plane.representation
        plane.close()

    def test_only_term_bipartite_is_exposed(self, store):
        plane = attach(store.meta)
        with pytest.raises(KeyError):
            plane.representation.bipartite("U")
        plane.close()

    def test_publish_without_multibipartite(self, expander):
        store = SharedMatrixStore.publish(
            expander.matrices, expander, prefix="t-shm-bare"
        )
        try:
            plane = attach(store.meta)
            assert not store.meta.has_term_index
            with pytest.raises(KeyError):
                plane.representation.bipartite("T")
            plane.close()
        finally:
            store.unlink()
            store.close()


class TestSuggestParity:
    def test_in_process_suggestions_identical(
        self, store, single_suggester, multibipartite
    ):
        plane = attach(store.meta)
        shared = PQSDA(plane.representation, plane.expander, None, SERVE_CONFIG)
        probes = multibipartite.queries[:15] + [
            "totally unseen query",
            multibipartite.queries[0].split()[0] + " unseen suffix",
        ]
        for query in probes:
            assert shared.suggest(query, k=8) == single_suggester.suggest(
                query, k=8
            )
        plane.close()


class TestHotTable:
    TABLE = {
        "alpha beta": ["suggestion one", "suggestion two"],
        "gamma": ["suggestion two", "shared string", "delta"],
        "empty ranking": [],
    }

    @pytest.fixture()
    def hot_store(self, multibipartite, expander):
        store = SharedMatrixStore.publish(
            expander.matrices,
            expander,
            multibipartite,
            prefix="t-shm-hot",
            hot_table=self.TABLE,
        )
        yield store
        store.unlink()
        store.close()

    def test_meta_reports_table(self, hot_store, store):
        assert hot_store.meta.has_hot_table
        assert hot_store.meta.n_hot == len(self.TABLE)
        assert not store.meta.has_hot_table
        assert store.meta.n_hot == 0

    def test_publisher_side_round_trip(self, hot_store):
        table = hot_store.hot_table()
        assert table.as_dict() == self.TABLE
        assert len(table) == len(self.TABLE)
        assert table.lookup("never packed") is None

    def test_attached_side_round_trip(self, hot_store):
        plane = attach(hot_store.meta)
        assert plane.hot_table is not None
        assert plane.hot_table.as_dict() == self.TABLE
        assert plane.hot_table.lookup("never packed") is None
        plane.close()

    def test_entries_sorted_by_stable_hash(self, hot_store):
        table = hot_store.hot_table()
        hashes = [hot_hash(query) for query in table.queries]
        assert hashes == sorted(hashes)

    def test_plane_without_table_has_none(self, store):
        assert store.hot_table() is None
        plane = attach(store.meta)
        assert plane.hot_table is None
        plane.close()


class TestLifecycle:
    def test_unlink_removes_dev_shm_entry(self, multibipartite, expander):
        store = SharedMatrixStore.publish(
            expander.matrices, expander, multibipartite, prefix="t-shm-life"
        )
        path = f"/dev/shm/{store.segment_name}"
        if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
            pytest.skip("/dev/shm not available")
        assert os.path.exists(path)
        store.unlink()
        store.close()
        assert not os.path.exists(path)

    def test_unlink_is_idempotent(self, multibipartite, expander):
        store = SharedMatrixStore.publish(
            expander.matrices, expander, multibipartite, prefix="t-shm-idem"
        )
        store.unlink()
        store.unlink()
        store.close()

    def test_store_close_is_idempotent_and_composes_with_unlink(
        self, multibipartite, expander
    ):
        # The full teardown matrix: every interleaving of the publisher's
        # close()/unlink() must be safe to repeat — the pool's cleanup
        # paths (swap failure, publish_shard rollback, close()) may each
        # run over a store another path already tore down.
        store = SharedMatrixStore.publish(
            expander.matrices, expander, multibipartite, prefix="t-shm-seq"
        )
        store.unlink()
        store.close()
        store.close()
        store.unlink()
        store.close()

    def test_shard_store_lifecycle_is_idempotent(self, multibipartite, expander):
        from repro.graphs.shard import ShardPlan, build_shard_slices
        from repro.serve.shard_plane import SharedShardStore

        slices = build_shard_slices(
            expander.matrices, ShardPlan.hashed(2), multibipartite
        )
        store = SharedShardStore.publish(slices[0], prefix="t-shm-shard-life")
        path = f"/dev/shm/{store.segment_name}"
        if os.path.isdir("/dev/shm"):
            assert os.path.exists(path)
        store.unlink()
        store.unlink()
        store.close()
        store.close()
        store.unlink()
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(path)

    def test_close_is_idempotent(self, store):
        plane = attach(store.meta)
        plane.close()
        plane.close()
        assert plane.matrices is None

    def test_publish_requires_grams(self, expander):
        from dataclasses import replace

        stripped = replace(expander.matrices, gram=None)
        with pytest.raises(ValueError, match="gram"):
            SharedMatrixStore.publish(stripped, expander)
