"""The async HTTP front-end: identity, deadlines, shedding, isolation.

Fake pools make the control-plane behavior deterministic (tier
selection, deadline expiry, per-request failures, batching windows); one
real :class:`SuggestWorkerPool` closes the loop end to end — bytes over
a socket must equal ``suggest_batch`` bit for bit.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.baselines.base import SuggestRequest
from repro.obs.registry import MetricsRegistry
from repro.serve.frontend import (
    FrontendConfig,
    SuggestFrontend,
    run_in_thread,
    tier_for_depth,
)
from repro.serve.pool import SuggestError, SuggestWorkerPool

from tests.serve.conftest import SERVE_CONFIG


def _metric_value(registry, name, labels=None):
    for entry in registry.snapshot()["metrics"]:
        if entry["name"] == name and (
            labels is None or entry["labels"] == labels
        ):
            return entry["value"]
    return None


def _get(url):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class FakePool:
    """Scriptable pool: fixed depth, optional delay, recorded calls."""

    def __init__(self, n_workers=2, depth=0, delay=0.0, fail_queries=()):
        self.n_workers = n_workers
        self.queue_depth = depth
        self.delay = delay
        self.fail_queries = set(fail_queries)
        self.calls: list[list[SuggestRequest]] = []
        self._lock = threading.Lock()

    def suggest_many(self, requests, return_errors=False):
        with self._lock:
            self.calls.append(list(requests))
        if self.delay:
            time.sleep(self.delay)
        results = []
        for request in requests:
            if request.query in self.fail_queries:
                assert return_errors
                results.append(SuggestError(0, "TypeError: scripted failure"))
            else:
                results.append(
                    [f"{request.query}-s{i}" for i in range(request.k)]
                )
        return results

    @property
    def dispatched(self):
        with self._lock:
            return [request for call in self.calls for request in call]


@pytest.fixture
def fast_config():
    return FrontendConfig(batch_window_ms=1.0)


def test_config_validates_tier_ordering():
    with pytest.raises(ValueError, match="shed depths"):
        FrontendConfig(shed_rerank_depth=8.0, shed_personalize_depth=4.0)
    with pytest.raises(ValueError, match="shed depths"):
        FrontendConfig(reject_depth=1.0)
    with pytest.raises(ValueError, match="batch_window_ms"):
        FrontendConfig(batch_window_ms=-1.0)


def test_tier_is_monotone_in_depth(fast_config):
    tiers = [
        tier_for_depth(depth, fast_config) for depth in (0, 3.9, 4, 7.9, 8, 16, 99)
    ]
    assert tiers == [0, 0, 1, 1, 2, 3, 3]
    assert tiers == sorted(tiers)


class TestShedTiers:
    def test_tiers_follow_queue_depth_in_order(self):
        """Rising depth walks the documented tier order 0 → 1 → 2 → 3,
        forwarding the tier to the pool — until 3, which never dispatches."""
        pool = FakePool(n_workers=1)
        registry = MetricsRegistry()
        config = FrontendConfig(
            batch_window_ms=0.0,
            shed_rerank_depth=4.0,
            shed_personalize_depth=8.0,
            reject_depth=16.0,
        )
        with run_in_thread(pool, config=config, registry=registry) as handle:
            for depth, want_tier, want_status in (
                (0, 0, 200),
                (4, 1, 200),
                (8, 2, 200),
                (16, 3, 503),
            ):
                pool.queue_depth = depth
                status, body = _get(handle.url + f"/suggest?q=d{depth}&k=2")
                assert status == want_status
                assert body["shed_tier"] == want_tier
        shed_of = {request.query: request.shed for request in pool.dispatched}
        assert shed_of == {"d0": 0, "d4": 1, "d8": 2}  # d16 never dispatched
        for label, want in (("rerank", 1), ("personalize", 1), ("reject", 1)):
            assert _metric_value(registry, f"serve.http.shed.{label}") == want
        assert _metric_value(
            registry, "serve.http.responses", {"code": "503"}
        ) == 1

    def test_depth_is_per_worker(self):
        """The same absolute backlog sheds on a small pool, not a big one."""
        config = FrontendConfig(batch_window_ms=0.0, reject_depth=16.0)
        for n_workers, expected_status in ((1, 503), (8, 200)):
            pool = FakePool(n_workers=n_workers, depth=20)
            with run_in_thread(pool, config=config) as handle:
                status, _ = _get(handle.url + "/suggest?q=x&k=1")
                assert status == expected_status


class TestDeadlines:
    def test_deadline_expiry_returns_504(self):
        pool = FakePool(delay=1.0)
        registry = MetricsRegistry()
        with run_in_thread(
            pool, config=FrontendConfig(batch_window_ms=0.0), registry=registry
        ) as handle:
            status, body = _get(
                handle.url + "/suggest?q=slow&k=2&deadline_ms=80"
            )
            assert status == 504
            assert body["error"] == "deadline expired"
            assert _metric_value(registry, "serve.http.deadline_expired") == 1
            assert _metric_value(
                registry, "serve.http.responses", {"code": "504"}
            ) == 1

    def test_request_expired_in_queue_is_never_dispatched(self):
        """A request whose deadline passes while it waits behind a slow
        batch gets its 504 without ever burning a worker on it."""
        pool = FakePool(delay=0.6)
        config = FrontendConfig(batch_window_ms=0.0, max_dispatchers=1)
        with run_in_thread(pool, config=config) as handle:
            slow = threading.Thread(
                target=_get, args=(handle.url + "/suggest?q=first&k=1",)
            )
            slow.start()
            deadline = time.monotonic() + 5
            while not pool.calls and time.monotonic() < deadline:
                time.sleep(0.01)  # first batch must be in flight
            status, _ = _get(
                handle.url + "/suggest?q=doomed&k=1&deadline_ms=50"
            )
            slow.join(timeout=30)
            assert status == 504
        assert {r.query for r in pool.dispatched} == {"first"}


class TestPerRequestFailures:
    def test_worker_error_maps_to_500_for_that_request_only(self):
        pool = FakePool(fail_queries={"bad"})
        registry = MetricsRegistry()
        with run_in_thread(
            pool,
            config=FrontendConfig(batch_window_ms=20.0),
            registry=registry,
        ) as handle:
            status, body = _post(handle.url + "/suggest", {
                "requests": [
                    {"q": "good1", "k": 2},
                    {"q": "bad", "k": 2},
                    {"q": "good2", "k": 2},
                ],
            })
            assert status == 200
            statuses = [result["status"] for result in body["results"]]
            assert statuses == [200, 500, 200]
            assert body["results"][0]["suggestions"] == ["good1-s0", "good1-s1"]
            assert "TypeError" in body["results"][1]["error"]
            assert body["results"][1]["worker"] == 0
            assert body["results"][2]["suggestions"] == ["good2-s0", "good2-s1"]
        # All three rode one micro-batch — isolation is per-request,
        # not an artifact of separate dispatches.
        assert any(len(call) == 3 for call in pool.calls)


class TestHttpPlumbing:
    def test_bad_requests_and_routes(self, fast_config):
        pool = FakePool()
        with run_in_thread(pool, config=fast_config) as handle:
            assert _get(handle.url + "/suggest?k=3")[0] == 400
            assert _get(handle.url + "/suggest?q=x&k=zero")[0] == 400
            assert _get(handle.url + "/suggest?q=x&deadline_ms=-5")[0] == 400
            assert _get(handle.url + "/nope")[0] == 404
            status, _ = _post(handle.url + "/suggest", {"requests": []})
            assert status == 400
            request = urllib.request.Request(
                handle.url + "/suggest", data=b"{}", method="PUT"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 405
        assert pool.calls == []  # nothing malformed reached the pool

    def test_healthz_and_metrics_endpoints(self, fast_config):
        registry = MetricsRegistry()
        with run_in_thread(
            FakePool(n_workers=3), config=fast_config, registry=registry
        ) as handle:
            status, body = _get(handle.url + "/healthz")
            assert (status, body) == (200, {"status": "ok", "workers": 3})
            _get(handle.url + "/suggest?q=x&k=1")
            with urllib.request.urlopen(handle.url + "/metrics") as response:
                text = response.read().decode()
            assert "repro_serve_http_requests_total 1" in text
            assert 'repro_serve_http_responses_total{code="200"}' in text
            status, snapshot = _get(handle.url + "/metrics.json")
            assert status == 200
            assert any(
                entry["name"] == "serve.http.batch_size"
                for entry in snapshot["metrics"]
            )

    def test_concurrent_requests_coalesce_into_micro_batches(self):
        pool = FakePool()
        config = FrontendConfig(batch_window_ms=150.0)
        with run_in_thread(pool, config=config) as handle:
            n_requests = 6
            threads = [
                threading.Thread(
                    target=_get,
                    args=(handle.url + f"/suggest?q=q{i}&k=1",),
                )
                for i in range(n_requests)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert len(pool.dispatched) == n_requests
        assert len(pool.calls) < n_requests  # coalesced, not one-by-one
        assert max(len(call) for call in pool.calls) >= 2

    def test_pool_level_failure_maps_to_500(self, fast_config):
        class ExplodingPool(FakePool):
            def suggest_many(self, requests, return_errors=False):
                super().suggest_many(requests, return_errors)
                raise TimeoutError("replies outstanding after 30s")

        with run_in_thread(ExplodingPool(), config=fast_config) as handle:
            status, body = _get(handle.url + "/suggest?q=x&k=1")
            assert status == 500
            assert "outstanding" in body["error"]


class TestEndToEnd:
    """One real pool behind a real socket: answers must be bit-identical."""

    @pytest.fixture(scope="class")
    def served(self, expander, multibipartite):
        registry = MetricsRegistry()
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=2,
            registry=registry,
            prefix="t-http",
        ) as pool:
            with run_in_thread(
                pool,
                config=FrontendConfig(batch_window_ms=5.0),
                registry=registry,
            ) as handle:
                yield pool, handle, registry

    def test_http_answers_are_bit_identical_to_suggest_batch(
        self, served, multibipartite, single_suggester
    ):
        _, handle, _ = served
        queries = multibipartite.queries[:10]
        expected = single_suggester.suggest_batch(
            [SuggestRequest(query=query, k=8) for query in queries]
        )
        for query, want in zip(queries, expected):
            status, body = _get(
                handle.url + "/suggest?q="
                + urllib.request.quote(query) + "&k=8"
            )
            assert status == 200
            assert body["suggestions"] == want
            assert body["shed_tier"] == 0

    def test_http_batch_post_matches_too(
        self, served, multibipartite, single_suggester
    ):
        _, handle, _ = served
        queries = multibipartite.queries[10:16]
        expected = single_suggester.suggest_batch(
            [SuggestRequest(query=query, k=8) for query in queries]
        )
        status, body = _post(handle.url + "/suggest", {
            "requests": [{"q": query, "k": 8} for query in queries],
        })
        assert status == 200
        assert [r["suggestions"] for r in body["results"]] == expected
        assert all(r["status"] == 200 for r in body["results"])

    def test_depth_gauge_settles_after_load(self, served):
        pool, _, registry = served
        deadline = time.monotonic() + 10
        while pool.queue_depth and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.queue_depth == 0
        assert _metric_value(registry, "serve.pool.queue_depth") == 0
