"""Exporters: JSON round-trip, Prometheus text format, format parity."""

import json

from repro.obs.export import to_json, to_prometheus, write_json
from repro.obs.registry import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serving.cache.hits").inc(3)
    registry.gauge("serving.batch.queue_depth").set(2)
    histogram = registry.histogram(
        "trace.span.seconds", labels={"span": "expand"}, buckets=(0.1, 1.0)
    )
    histogram.observe(0.05)
    histogram.observe(5.0)
    series = registry.series("upm.sweep.log_likelihood")
    series.append(-120.5)
    series.append(-110.25)
    return registry


class TestJson:
    def test_round_trips(self):
        snapshot = _populated_registry().snapshot()
        assert json.loads(to_json(snapshot)) == snapshot

    def test_write_json(self, tmp_path):
        snapshot = _populated_registry().snapshot()
        path = write_json(snapshot, tmp_path / "metrics.json")
        assert json.loads(path.read_text()) == snapshot


class TestPrometheus:
    def test_counter_total_suffix(self):
        text = to_prometheus(_populated_registry().snapshot())
        assert "# TYPE repro_serving_cache_hits_total counter" in text
        assert "repro_serving_cache_hits_total 3" in text

    def test_gauge(self):
        text = to_prometheus(_populated_registry().snapshot())
        assert "repro_serving_batch_queue_depth 2" in text

    def test_histogram_cumulative_buckets(self):
        text = to_prometheus(_populated_registry().snapshot())
        assert 'repro_trace_span_seconds_bucket{le="0.1",span="expand"} 1' in text
        assert 'repro_trace_span_seconds_bucket{le="1.0",span="expand"} 1' in text
        assert 'repro_trace_span_seconds_bucket{le="+Inf",span="expand"} 2' in text
        assert 'repro_trace_span_seconds_count{span="expand"} 2' in text
        assert 'repro_trace_span_seconds_sum{span="expand"} 5.05' in text

    def test_series_flattened(self):
        text = to_prometheus(_populated_registry().snapshot())
        assert "repro_upm_sweep_log_likelihood_last -110.25" in text
        assert "repro_upm_sweep_log_likelihood_samples 2" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"q": 'he said "hi"\n'}).inc()
        text = to_prometheus(registry.snapshot())
        assert r'q="he said \"hi\"\n"' in text

    def test_empty_snapshot(self):
        assert to_prometheus({"metrics": []}) == ""


class TestFormatParity:
    def test_json_reload_renders_identical_prometheus(self):
        """The acceptance property: exporting via a JSON file loses nothing.

        ``--metrics-out`` writes JSON; ``repro stats --metrics f.json
        --format prometheus`` re-renders it.  Both exporters consume the
        same snapshot dict, so the indirection must be value-identical.
        """
        snapshot = _populated_registry().snapshot()
        direct = to_prometheus(snapshot)
        via_json = to_prometheus(json.loads(to_json(snapshot)))
        assert via_json == direct
