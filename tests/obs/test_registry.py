"""MetricsRegistry: instrument semantics, identity, snapshots, null object."""

import threading

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_increments(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_thread_safety(self):
        counter = MetricsRegistry().counter("c")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec(5)
        assert gauge.value == 8


class TestHistogram:
    def test_bucket_placement(self):
        histogram = Histogram(bounds=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 4.0, 9.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(114.5)
        assert histogram.mean == pytest.approx(114.5 / 5)
        counts, total = histogram._snapshot()
        # 0.5 and 1.0 land in <=1.0; 4.0 in <=5.0; 9.0 in <=10.0; 100 in +Inf
        assert counts == [2, 1, 1, 1]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 1.0))

    def test_default_buckets(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.bounds == DEFAULT_LATENCY_BUCKETS


class TestSeries:
    def test_keeps_order(self):
        series = MetricsRegistry().series("s")
        for value in (3.0, 1.0, 2.0):
            series.append(value)
        assert series.values == (3.0, 1.0, 2.0)
        assert len(series) == 3


class TestIdentity:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_labels_distinguish(self):
        registry = MetricsRegistry()
        a = registry.counter("x", labels={"span": "a"})
        b = registry.counter("x", labels={"span": "b"})
        assert a is not b
        assert a is registry.counter("x", labels={"span": "a"})

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_default_buckets_are_not_a_conflict(self):
        registry = MetricsRegistry()
        first = registry.histogram("h")
        assert registry.histogram("h", buckets=DEFAULT_LATENCY_BUCKETS) is first


class TestSnapshot:
    def test_shape_and_ordering(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.depth").set(7)
        registry.histogram("c.seconds", buckets=(1.0, 2.0)).observe(1.5)
        registry.series("d.curve").append(0.25)
        snapshot = registry.snapshot()
        names = [entry["name"] for entry in snapshot["metrics"]]
        assert names == sorted(names)
        by_name = {entry["name"]: entry for entry in snapshot["metrics"]}
        assert by_name["b.count"]["value"] == 2
        assert by_name["a.depth"]["value"] == 7
        hist = by_name["c.seconds"]
        assert hist["buckets"] == [[1.0, 0], [2.0, 1], ["+Inf", 1]]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(1.5)
        assert by_name["d.curve"]["values"] == [0.25]

    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5, 9.0):
            histogram.observe(value)
        (entry,) = registry.snapshot()["metrics"]
        assert entry["buckets"] == [
            [1.0, 1], [2.0, 2], [3.0, 3], ["+Inf", 4],
        ]

    def test_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", labels={"k": "v"}).inc()
        registry.histogram("h").observe(0.1)
        assert json.loads(json.dumps(registry.snapshot()))


class TestNullRegistry:
    def test_all_instruments_are_noops(self):
        counter = NULL_REGISTRY.counter("anything")
        counter.inc()
        counter.inc(-5)  # even invalid input is swallowed
        NULL_REGISTRY.gauge("g").set(1)
        NULL_REGISTRY.histogram("h").observe(0.5)
        NULL_REGISTRY.series("s").append(1.0)
        assert NULL_REGISTRY.snapshot() == {"metrics": []}

    def test_shared_singleton(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")
