"""Tracer spans: nesting, thread-locality, histogram routing, null object."""

import threading
import time

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, SPAN_HISTOGRAM, Tracer


class TestSpanTree:
    def test_nesting_builds_tree(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        root = tracer.last_trace
        assert root is not None
        assert root.name == "root"
        assert [child.name for child in root.children] == [
            "child_a", "child_b",
        ]
        assert root.children[0].children[0].name == "grandchild"

    def test_timings_non_zero_and_nested(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.005)
        root = tracer.last_trace
        inner = root.find("inner")
        assert inner.seconds >= 0.005
        assert root.seconds >= inner.seconds

    def test_find_depth_first(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        root = tracer.last_trace
        assert root.find("a") is root
        assert root.find("b") is root.children[0]
        assert root.find("missing") is None

    def test_to_dict(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tree = tracer.last_trace.to_dict()
        assert tree["name"] == "a"
        assert tree["children"][0]["name"] == "b"
        assert tree["seconds"] >= 0.0

    def test_last_trace_is_latest_root(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert tracer.last_trace.name == "second"


class TestHistogramRouting:
    def test_each_span_observed_by_label(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with tracer.span("suggest"):
            with tracer.span("expand"):
                pass
            with tracer.span("expand"):
                pass
        assert registry.histogram(
            SPAN_HISTOGRAM, labels={"span": "expand"}
        ).count == 2
        assert registry.histogram(
            SPAN_HISTOGRAM, labels={"span": "suggest"}
        ).count == 1


class TestThreadLocality:
    def test_concurrent_threads_grow_independent_trees(self):
        tracer = Tracer(MetricsRegistry())
        barrier = threading.Barrier(4)
        roots = {}

        def worker(name):
            barrier.wait()
            with tracer.span(name):
                with tracer.span(f"{name}.child"):
                    pass
            roots[name] = tracer.last_trace

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name, root in roots.items():
            assert root.name == name
            assert [c.name for c in root.children] == [f"{name}.child"]


class TestNullTracer:
    def test_spans_are_noops(self):
        with NULL_TRACER.span("anything") as span:
            assert span.seconds == 0.0
        assert NULL_TRACER.last_trace is None

    def test_shared_span_object(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
