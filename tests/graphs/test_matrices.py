"""Tests for repro.graphs.matrices."""

import numpy as np
import pytest
from scipy import sparse

from repro.graphs.matrices import build_matrices, row_normalize
from repro.graphs.multibipartite import BIPARTITE_KINDS, build_multibipartite
from repro.logs.sessionizer import sessionize


@pytest.fixture
def matrices(table1_log):
    sessions = sessionize(table1_log)
    mb = build_multibipartite(table1_log, sessions, weighted=True)
    return build_matrices(mb)


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        m = sparse.csr_matrix(np.array([[1.0, 3.0], [2.0, 2.0]]))
        normalized = row_normalize(m)
        assert np.allclose(np.asarray(normalized.sum(axis=1)).ravel(), 1.0)

    def test_zero_rows_stay_zero(self):
        m = sparse.csr_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        normalized = row_normalize(m)
        assert normalized[0].nnz == 0


class TestBuildMatrices:
    def test_query_ordering_shared(self, matrices):
        n = matrices.n_queries
        for kind in BIPARTITE_KINDS:
            assert matrices.incidence[kind].shape[0] == n
            assert matrices.affinity[kind].shape == (n, n)
            assert matrices.transition[kind].shape == (n, n)

    def test_affinity_symmetric(self, matrices):
        for kind in BIPARTITE_KINDS:
            L = matrices.affinity[kind]
            assert abs(L - L.T).max() < 1e-12

    def test_affinity_spectral_radius_at_most_one(self, matrices):
        for kind in BIPARTITE_KINDS:
            L = matrices.affinity[kind].toarray()
            eigenvalues = np.linalg.eigvalsh(L)
            assert eigenvalues.max() <= 1.0 + 1e-9
            assert eigenvalues.min() >= -1.0 - 1e-9

    def test_transitions_substochastic(self, matrices):
        for kind in BIPARTITE_KINDS:
            sums = np.asarray(matrices.transition[kind].sum(axis=1)).ravel()
            assert (sums <= 1.0 + 1e-9).all()
            # Rows of queries that have facets in this bipartite sum to 1.
            connected = np.asarray(
                matrices.incidence[kind].sum(axis=1)
            ).ravel() > 0
            assert np.allclose(sums[connected], 1.0)

    def test_noclick_query_has_zero_url_row(self, matrices):
        row = matrices.query_index["jvm download"]
        assert matrices.transition["U"][row].nnz == 0
        assert matrices.affinity["U"][row].nnz == 0

    def test_session_bipartite_connects_session_mates(self, matrices):
        sun = matrices.query_index["sun"]
        solar = matrices.query_index["solar cell"]
        assert matrices.transition["S"][sun, solar] > 0

    def test_mean_transition_mixture(self, matrices):
        mean = matrices.mean_transition()
        stacked = sum(matrices.transition[k] for k in BIPARTITE_KINDS) / 3
        assert abs(mean - stacked).max() < 1e-12

    def test_query_index_consistent(self, matrices):
        for query, ordinal in matrices.query_index.items():
            assert matrices.queries[ordinal] == query
