"""Unit tests for the MultiBipartite container API."""

import pytest

from repro.graphs.bipartite import Bipartite
from repro.graphs.multibipartite import (
    BIPARTITE_KINDS,
    MultiBipartite,
    build_multibipartite,
)
from repro.logs.sessionizer import sessionize


def make_mb():
    u, s, t = Bipartite(), Bipartite(), Bipartite()
    u.add("sun", "www.java.com")
    s.add("sun", "sess1")
    s.add("solar cell", "sess1")
    t.add("sun java", "sun")
    t.add("sun", "sun")
    return MultiBipartite({"U": u, "S": s, "T": t})


class TestConstruction:
    def test_kinds(self):
        assert BIPARTITE_KINDS == ("U", "S", "T")

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="missing bipartites"):
            MultiBipartite({"U": Bipartite(), "S": Bipartite()})

    def test_query_union(self):
        mb = make_mb()
        assert set(mb.queries) == {"sun", "solar cell", "sun java"}
        assert mb.n_queries == 3

    def test_contains_normalizes(self):
        mb = make_mb()
        assert "SUN" in mb
        assert "Sun Java" in mb
        assert "moon" not in mb

    def test_bipartite_lookup(self):
        mb = make_mb()
        assert mb.bipartite("U").weight("sun", "www.java.com") == 1.0
        with pytest.raises(KeyError, match="kind must be one of"):
            mb.bipartite("X")


class TestNeighborsAndRestriction:
    def test_query_neighbors_union_over_kinds(self):
        mb = make_mb()
        assert mb.query_neighbors("sun") == {"solar cell", "sun java"}

    def test_restrict_queries(self):
        mb = make_mb()
        sub = mb.restrict_queries(["sun", "sun java"])
        assert set(sub.queries) == {"sun", "sun java"}
        assert sub.query_neighbors("sun") == {"sun java"}

    def test_restrict_normalizes(self):
        mb = make_mb()
        sub = mb.restrict_queries(["SUN"])
        assert "sun" in sub


class TestBuildFromLog:
    def test_weighted_and_raw_same_structure(self, table1_log):
        sessions = sessionize(table1_log)
        raw = build_multibipartite(table1_log, sessions, weighted=False)
        weighted = build_multibipartite(table1_log, sessions, weighted=True)
        assert raw.queries == weighted.queries
        for kind in BIPARTITE_KINDS:
            assert raw.bipartite(kind).n_edges == weighted.bipartite(kind).n_edges

    def test_term_bipartite_deduplicates_within_query(self):
        from repro.logs.schema import QueryRecord
        from repro.logs.storage import QueryLog

        log = QueryLog([QueryRecord("u", "java java java", 0.0)])
        mb = build_multibipartite(log, sessionize(log), weighted=False)
        # One submission contributes weight 1 per distinct term.
        assert mb.bipartite("T").weight("java java java", "java") == 1.0

    def test_empty_query_rows_skipped(self):
        from repro.logs.schema import QueryRecord
        from repro.logs.storage import QueryLog

        log = QueryLog(
            [
                QueryRecord("u", "???", 0.0, clicked_url="www.x.com"),
                QueryRecord("u", "sun", 10.0),
            ]
        )
        mb = build_multibipartite(log, sessionize(log), weighted=False)
        assert set(mb.queries) == {"sun"}
