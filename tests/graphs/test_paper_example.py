"""Structural reproduction of the paper's Table I / Fig. 2 example.

Fig. 2 draws the three bipartites of the Table I log; Sec. III then argues
reachability: through the click graph "sun" only reaches "java", while the
session and term bipartites reach "sun java", "jvm download", "solar cell",
"sun oracle".  These tests assert exactly those structures.
"""

import pytest

from repro.graphs.click_graph import build_click_graph
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize


@pytest.fixture
def multibipartite(table1_log):
    sessions = sessionize(table1_log)
    return build_multibipartite(table1_log, sessions, weighted=False)


class TestFig2aClickGraph:
    def test_edges(self, multibipartite):
        url = multibipartite.bipartite("U")
        assert url.weight("sun", "www.java.com") == 1.0
        assert url.weight("sun java", "java.sun.com") == 1.0
        assert url.weight("sun", "www.suncellular.com") == 1.0
        assert url.weight("java", "www.java.com") == 1.0
        assert url.weight("sun oracle", "www.oracle.com") == 1.0

    def test_jvm_download_has_no_click(self, multibipartite):
        url = multibipartite.bipartite("U")
        assert url.facets_of("jvm download") == {}

    def test_sun_reaches_only_java_through_clicks(self, multibipartite):
        # The paper: "By using the query-URL bipartite, 'sun' can only reach
        # the query 'java'."
        url = multibipartite.bipartite("U")
        assert url.query_neighbors("sun") == {"java"}


class TestFig2bSessionBipartite:
    def test_three_sessions(self, multibipartite):
        session = multibipartite.bipartite("S")
        assert len(session.facets) == 3

    def test_sun_reaches_session_mates(self, multibipartite):
        # "Through the query-session bipartite, 'sun' can reach 'sun java',
        # 'jvm download' and 'solar cell'."
        session = multibipartite.bipartite("S")
        assert session.query_neighbors("sun") == {
            "sun java",
            "jvm download",
            "solar cell",
        }


class TestFig2cTermBipartite:
    def test_sun_term_connects_four_queries(self, multibipartite):
        term = multibipartite.bipartite("T")
        assert set(term.queries_of("sun")) == {
            "sun",
            "sun java",
            "sun oracle",
        }

    def test_sun_reaches_term_mates(self, multibipartite):
        # "Through the query-term bipartite, 'sun' can reach 'sun java',
        # 'sun oracle' ..." (and transitively "java" via the term "java"
        # of "sun java" -- the direct term neighbours are via "sun").
        term = multibipartite.bipartite("T")
        assert term.query_neighbors("sun") == {"sun java", "sun oracle"}

    def test_java_term_shared(self, multibipartite):
        term = multibipartite.bipartite("T")
        assert set(term.queries_of("java")) == {"sun java", "java"}


class TestCombinedReachability:
    def test_multibipartite_beats_click_graph(self, table1_log, multibipartite):
        click_graph = build_click_graph(table1_log, weighted=False)
        click_reach = click_graph.neighbors("sun")
        multi_reach = multibipartite.query_neighbors("sun")
        assert click_reach < multi_reach  # strictly more coverage
        assert multi_reach == {
            "java",
            "sun java",
            "jvm download",
            "solar cell",
            "sun oracle",
        }

    def test_query_node_union(self, multibipartite):
        # All six unique queries are nodes (jvm download only via S/T).
        assert multibipartite.n_queries == 6
