"""Tests for repro.graphs.compact (Sec. IV-A)."""

import pytest

from repro.graphs.compact import (
    CompactConfig,
    RandomWalkExpander,
    compact_subgraph,
)
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def big_multibipartite():
    world = make_world(seed=0)
    synthetic = generate_log(world, GeneratorConfig(n_users=25, seed=3))
    sessions = sessionize(synthetic.log)
    return build_multibipartite(synthetic.log, sessions, weighted=True)


@pytest.fixture
def table1_multibipartite(table1_log):
    sessions = sessionize(table1_log)
    return build_multibipartite(table1_log, sessions, weighted=False)


class TestCompactConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"size": 0}, {"restart": 0.0}, {"restart": 1.0}, {"iterations": 0}],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CompactConfig(**kwargs)


class TestExpander:
    def test_seed_must_exist(self, table1_multibipartite):
        expander = RandomWalkExpander(table1_multibipartite)
        with pytest.raises(ValueError, match="no seed query"):
            expander.expand({"nonexistent": 1.0})

    def test_unknown_seeds_ignored_when_one_known(self, table1_multibipartite):
        expander = RandomWalkExpander(table1_multibipartite)
        chosen = expander.expand({"sun": 1.0, "nonexistent": 0.5})
        assert "sun" in chosen

    def test_seeds_always_included(self, table1_multibipartite):
        expander = RandomWalkExpander(table1_multibipartite)
        chosen = expander.expand(
            {"sun": 1.0, "sun java": 0.5}, CompactConfig(size=2)
        )
        assert chosen[:2] == ["sun", "sun java"]

    def test_size_respected(self, big_multibipartite):
        expander = RandomWalkExpander(big_multibipartite)
        seed = big_multibipartite.queries[0]
        chosen = expander.expand({seed: 1.0}, CompactConfig(size=30))
        assert len(chosen) <= 30

    def test_mass_ranks_related_queries_first(self, table1_multibipartite):
        expander = RandomWalkExpander(table1_multibipartite)
        mass = expander.walk_mass({"sun": 1.0}, CompactConfig())
        index = expander.matrices.query_index
        # "sun java" shares a session AND the term "sun" with the seed;
        # "solar cell" only shares a session.
        assert mass[index["sun java"]] > mass[index["solar cell"]]

    def test_walk_mass_is_distribution(self, big_multibipartite):
        expander = RandomWalkExpander(big_multibipartite)
        seed = big_multibipartite.queries[5]
        mass = expander.walk_mass({seed: 1.0}, CompactConfig())
        assert mass.min() >= 0
        assert mass.sum() == pytest.approx(1.0, abs=1e-9)

    def test_deterministic(self, big_multibipartite):
        expander = RandomWalkExpander(big_multibipartite)
        seed = big_multibipartite.queries[7]
        a = expander.expand({seed: 1.0}, CompactConfig(size=40))
        b = expander.expand({seed: 1.0}, CompactConfig(size=40))
        assert a == b


class TestCompactSubgraph:
    def test_returns_restricted_representation(self, big_multibipartite):
        seed = big_multibipartite.queries[0]
        compact = compact_subgraph(
            big_multibipartite, {seed: 1.0}, CompactConfig(size=25)
        )
        assert compact.n_queries <= 25
        assert seed in compact

    def test_prebuilt_expander_reused(self, big_multibipartite):
        expander = RandomWalkExpander(big_multibipartite)
        seed = big_multibipartite.queries[0]
        a = compact_subgraph(
            big_multibipartite, {seed: 1.0}, CompactConfig(size=20), expander
        )
        b = compact_subgraph(
            big_multibipartite, {seed: 1.0}, CompactConfig(size=20), expander
        )
        assert a.queries == b.queries

    def test_compact_smaller_than_full(self, big_multibipartite):
        seed = big_multibipartite.queries[0]
        compact = compact_subgraph(
            big_multibipartite, {seed: 1.0}, CompactConfig(size=25)
        )
        assert compact.n_queries < big_multibipartite.n_queries
