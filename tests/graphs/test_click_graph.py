"""Tests for repro.graphs.click_graph."""

import numpy as np
import pytest

from repro.graphs.click_graph import build_click_graph


@pytest.fixture
def graph(table1_log):
    return build_click_graph(table1_log, weighted=False)


class TestBuild:
    def test_noclick_queries_excluded(self, graph):
        assert "jvm download" not in graph

    def test_queries_and_urls(self, graph):
        assert "sun" in graph
        assert "www.java.com" in graph.urls
        assert graph.n_queries == 5

    def test_weighted_variant_changes_weights(self, table1_log):
        raw = build_click_graph(table1_log, weighted=False)
        weighted = build_click_graph(table1_log, weighted=True)
        assert raw.queries == weighted.queries
        assert raw.adjacency.sum() != pytest.approx(weighted.adjacency.sum())

    def test_ordinal_roundtrip(self, graph):
        for query in graph.queries:
            assert graph.query_at(graph.query_ordinal(query)) == query

    def test_ordinal_unknown_raises(self, graph):
        with pytest.raises(KeyError):
            graph.query_ordinal("jvm download")

    def test_normalized_lookup(self, graph):
        assert graph.query_ordinal("SUN") == graph.query_ordinal("sun")


class TestTransitions:
    def test_query_to_url_row_stochastic(self, graph):
        transition = graph.query_to_url_transition()
        sums = np.asarray(transition.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_url_to_query_row_stochastic(self, graph):
        transition = graph.url_to_query_transition()
        sums = np.asarray(transition.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_query_transition_row_stochastic(self, graph):
        transition = graph.query_transition()
        sums = np.asarray(transition.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_sun_transitions_to_java(self, graph):
        transition = graph.query_transition()
        sun = graph.query_ordinal("sun")
        java = graph.query_ordinal("java")
        solar = graph.query_ordinal("solar cell")
        assert transition[sun, java] > 0
        assert transition[sun, solar] == 0

    def test_self_transition_positive(self, graph):
        # A walker can return to its origin through the shared URL.
        transition = graph.query_transition()
        sun = graph.query_ordinal("sun")
        assert transition[sun, sun] > 0


class TestDerivation:
    def test_neighbors(self, graph):
        assert graph.neighbors("sun") == {"java"}

    def test_restrict_queries(self, graph):
        sub = graph.restrict_queries(["sun", "java"])
        assert set(sub.queries) == {"sun", "java"}
        assert sub.neighbors("sun") == {"java"}

    def test_empty_log(self):
        from repro.logs.storage import QueryLog

        graph = build_click_graph(QueryLog([]), weighted=False)
        assert graph.n_queries == 0
