"""Equivalence of the serving fast path with the string-rebuild slow path.

``BipartiteMatrices.restrict(ordinals)`` must produce matrices numerically
identical to ``build_matrices(multibipartite.restrict_queries(...))`` over
the same query set — this is what lets the online pipeline skip the string
rebuilding entirely.
"""

import numpy as np
import pytest

from repro.graphs.compact import CompactConfig, RandomWalkExpander
from repro.graphs.matrices import build_matrices
from repro.graphs.multibipartite import BIPARTITE_KINDS, build_multibipartite
from repro.logs.sessionizer import sessionize
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

MATRIX_NAMES = ("incidence", "gram", "affinity", "transition")


@pytest.fixture(scope="module")
def graph():
    world = make_world(seed=0)
    synthetic = generate_log(
        world,
        GeneratorConfig(n_users=25, mean_sessions_per_user=8, seed=11),
    )
    mb = build_multibipartite(synthetic.log, sessionize(synthetic.log))
    expander = RandomWalkExpander(mb)
    return mb, expander


def _restricted_pair(graph, seed_ordinals, size=40):
    mb, expander = graph
    full = expander.matrices
    seeds = {full.queries[i]: 1.0 for i in seed_ordinals}
    chosen = expander.expand(seeds, CompactConfig(size=size))
    ordinals = sorted(full.query_index[q] for q in chosen)
    fast = full.restrict(ordinals)
    slow = build_matrices(
        mb.restrict_queries([full.queries[i] for i in ordinals])
    )
    return fast, slow


class TestFastRestrictEquivalence:
    def test_matrices_identical_over_random_seed_sets(self, graph):
        full = graph[1].matrices
        rng = np.random.default_rng(3)
        for _ in range(5):
            picks = rng.choice(full.n_queries, size=3, replace=False)
            fast, slow = _restricted_pair(graph, [int(i) for i in picks])
            assert fast.queries == slow.queries
            assert fast.query_index == slow.query_index
            for kind in BIPARTITE_KINDS:
                for name in MATRIX_NAMES:
                    a = getattr(fast, name)[kind]
                    b = getattr(slow, name)[kind]
                    assert a.shape == b.shape, (name, kind)
                    assert np.array_equal(a.toarray(), b.toarray()), (
                        name,
                        kind,
                    )

    def test_restrict_without_cached_gram(self, graph):
        # Hand-assembled matrices (gram=None) recompute the gram instead
        # of slicing it; the result must not change.
        full = graph[1].matrices
        ordinals = list(range(0, full.n_queries, 7))
        from repro.graphs.matrices import BipartiteMatrices

        no_gram = BipartiteMatrices(
            queries=full.queries,
            query_index=full.query_index,
            incidence=full.incidence,
            affinity=full.affinity,
            transition=full.transition,
            gram=None,
        )
        with_gram = full.restrict(ordinals)
        without = no_gram.restrict(ordinals)
        for kind in BIPARTITE_KINDS:
            for name in MATRIX_NAMES:
                assert np.array_equal(
                    getattr(with_gram, name)[kind].toarray(),
                    getattr(without, name)[kind].toarray(),
                ), (name, kind)

    def test_restrict_validates_ordinals(self, graph):
        full = graph[1].matrices
        with pytest.raises(ValueError):
            full.restrict([])
        with pytest.raises(ValueError):
            full.restrict([-1])
        with pytest.raises(ValueError):
            full.restrict([full.n_queries])

    def test_restricted_transitions_substochastic(self, graph):
        fast, _ = _restricted_pair(graph, [0, 5])
        for kind in BIPARTITE_KINDS:
            sums = np.asarray(fast.transition[kind].sum(axis=1)).ravel()
            assert (sums <= 1.0 + 1e-9).all()
