"""Tests for repro.graphs.export (networkx views)."""

import networkx as nx
import pytest

from repro.graphs.click_graph import build_click_graph
from repro.graphs.export import (
    bipartite_to_networkx,
    click_graph_to_networkx,
    multibipartite_to_networkx,
    query_projection,
)
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize


@pytest.fixture
def multibipartite(table1_log):
    return build_multibipartite(
        table1_log, sessionize(table1_log), weighted=False
    )


class TestBipartiteExport:
    def test_nodes_partitioned(self, multibipartite):
        graph = bipartite_to_networkx(multibipartite.bipartite("U"), "U")
        queries = [
            n for n, d in graph.nodes(data=True) if d["bipartite"] == 0
        ]
        facets = [
            n for n, d in graph.nodes(data=True) if d["bipartite"] == 1
        ]
        assert "sun" in queries
        assert "U:www.java.com" in facets

    def test_edge_weights_preserved(self, multibipartite):
        graph = bipartite_to_networkx(multibipartite.bipartite("U"), "U")
        assert graph.edges["sun", "U:www.java.com"]["weight"] == 1.0

    def test_is_actually_bipartite(self, multibipartite):
        graph = bipartite_to_networkx(multibipartite.bipartite("T"), "T")
        assert nx.is_bipartite(graph)


class TestMultibipartiteExport:
    def test_facet_namespaces_disjoint(self, multibipartite):
        graph = multibipartite_to_networkx(multibipartite)
        # The term "sun" and any URL/session share no node even if equal.
        assert "T:sun" in graph
        assert "sun" in graph  # the query node
        kinds = {d["kind"] for _, d in graph.nodes(data=True)}
        assert kinds == {"query", "U", "S", "T"}

    def test_fig2_reachability_via_networkx(self, multibipartite):
        graph = multibipartite_to_networkx(multibipartite)
        # Two hops (query -> facet -> query) reach the Fig. 2 neighbours.
        two_hop = {
            n
            for facet in graph.neighbors("sun")
            for n in graph.neighbors(facet)
            if graph.nodes[n]["kind"] == "query" and n != "sun"
        }
        assert two_hop == {
            "java", "sun java", "jvm download", "solar cell", "sun oracle",
        }


class TestClickGraphExport:
    def test_roundtrip_structure(self, table1_log):
        click = build_click_graph(table1_log, weighted=False)
        graph = click_graph_to_networkx(click)
        assert graph.has_edge("sun", "U:www.java.com")
        assert graph.has_edge("java", "U:www.java.com")
        assert not graph.has_node("jvm download")  # no-click query


class TestQueryProjection:
    def test_edges_labelled_with_kinds(self, multibipartite):
        projection = query_projection(multibipartite)
        kinds = projection.edges["sun", "sun java"]["kinds"]
        # "sun" and "sun java" share u1's session AND the term "sun".
        assert set(kinds) == {"S", "T"}

    def test_click_only_pair(self, multibipartite):
        projection = query_projection(multibipartite)
        assert projection.edges["sun", "java"]["kinds"] == ["U"]

    def test_all_queries_present(self, multibipartite):
        projection = query_projection(multibipartite)
        assert set(projection.nodes) == set(multibipartite.queries)

    def test_components_merge_across_channels(self, multibipartite):
        projection = query_projection(multibipartite)
        assert nx.number_connected_components(projection) == 1
