"""Tests for repro.graphs.weighting (Eqs. 1-6)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.bipartite import Bipartite
from repro.graphs.weighting import apply_cfiqf, iqf


class TestIqf:
    def test_eq1_formula(self):
        # iqf = log(|Q| / n)
        assert iqf(100, 10) == pytest.approx(math.log(10))

    def test_fully_connected_facet_is_zero(self):
        assert iqf(50, 50) == pytest.approx(0.0)

    def test_rare_facet_large(self):
        assert iqf(10_000, 1) == pytest.approx(math.log(10_000))

    def test_monotonically_decreasing_in_count(self):
        values = [iqf(1000, n) for n in (1, 10, 100, 1000)]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize("total,count", [(0, 1), (10, 0), (10, -1), (5, 6)])
    def test_invalid_inputs(self, total, count):
        with pytest.raises(ValueError):
            iqf(total, count)

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_non_negative_whenever_defined(self, total, count):
        if count <= total:
            assert iqf(total, count) >= 0.0


class TestApplyCfiqf:
    def test_eq4_weights(self):
        b = Bipartite()
        # URL A clicked by 2 submissions, URL B by 1; |Q| = 10.
        b.add("q1", "urlA", 1.0)
        b.add("q2", "urlA", 1.0)
        b.add("q1", "urlB", 1.0)
        weighted = apply_cfiqf(b, total_queries=10)
        assert weighted.weight("q1", "urlA") == pytest.approx(math.log(10 / 2))
        assert weighted.weight("q1", "urlB") == pytest.approx(math.log(10 / 1))

    def test_raw_count_multiplies(self):
        b = Bipartite()
        b.add("q1", "urlA", 3.0)  # three submissions of q1 clicked urlA
        b.add("q2", "urlA", 1.0)
        weighted = apply_cfiqf(b, total_queries=8)
        expected = 3.0 * math.log(8 / 4)
        assert weighted.weight("q1", "urlA") == pytest.approx(expected)

    def test_discriminative_facet_upweighted(self):
        b = Bipartite()
        for i in range(9):
            b.add(f"q{i}", "popular", 1.0)
        b.add("q0", "rare", 1.0)
        weighted = apply_cfiqf(b, total_queries=10)
        assert weighted.weight("q0", "rare") > weighted.weight("q0", "popular")

    def test_ubiquitous_facet_keeps_epsilon(self):
        b = Bipartite()
        b.add("q1", "everywhere", 1.0)
        b.add("q2", "everywhere", 1.0)
        weighted = apply_cfiqf(b, total_queries=2)
        assert weighted.weight("q1", "everywhere") > 0.0

    def test_overweight_facet_clamped_not_raised(self):
        # A repeated term can make facet weight exceed |Q|.
        b = Bipartite()
        b.add("q1", "term", 2.0)
        b.add("q2", "term", 2.0)
        weighted = apply_cfiqf(b, total_queries=3)
        assert weighted.weight("q1", "term") > 0.0

    def test_original_untouched(self):
        b = Bipartite()
        b.add("q1", "urlA", 1.0)
        apply_cfiqf(b, total_queries=10)
        assert b.weight("q1", "urlA") == 1.0

    def test_structure_preserved(self):
        b = Bipartite()
        b.add("q1", "a", 1.0)
        b.add("q2", "b", 1.0)
        weighted = apply_cfiqf(b, total_queries=4)
        assert weighted.queries == b.queries
        assert weighted.facets == b.facets
        assert weighted.n_edges == b.n_edges
