"""Sharded graph plane: bit-identity to the unsharded path (ISSUE 8).

The contract under test: at ANY shard count, for hash and component
plans alike, the sharded expander's ``walk_mass``/``expand`` and the
downstream compact restrict + Eq. 15 solve are bit-for-bit equal to the
unsharded ``RandomWalkExpander`` path — closed shards via the local fast
walk, everything else via the stitched spill path.
"""

import numpy as np
import pytest

from repro.diversify.regularization import RegularizationConfig, RelevanceSolver
from repro.graphs.compact import CompactConfig, RandomWalkExpander
from repro.graphs.matrices import build_matrices
from repro.graphs.multibipartite import BIPARTITE_KINDS, build_multibipartite
from repro.graphs.shard import (
    ShardPlan,
    ShardedExpander,
    build_shard_slices,
    stitch_slices,
)
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

SHARD_COUNTS = (1, 2, 4, 7)
WALK_DEPTHS = (1, 4, 12)


@pytest.fixture(scope="module")
def world():
    synthetic = generate_log(
        make_world(seed=0),
        GeneratorConfig(n_users=12, mean_sessions_per_user=5, seed=7),
    )
    multibipartite = build_multibipartite(synthetic.log, synthetic.sessions)
    matrices = build_matrices(multibipartite)
    return multibipartite, matrices


def _plans(multibipartite, n_shards):
    return [
        ShardPlan.hashed(n_shards),
        ShardPlan.components(multibipartite, n_shards),
    ]


def _seed_sets(queries):
    return [
        {queries[0]: 1.0},
        {queries[3]: 1.0, queries[17 % len(queries)]: 0.5},
        {
            queries[40 % len(queries)]: 0.2,
            queries[7]: 1.0,
            queries[123 % len(queries)]: 0.9,
        },
    ]


def _assert_csr_equal(left, right):
    assert left.shape == right.shape
    assert np.array_equal(left.data, right.data)
    assert np.array_equal(
        left.indices.astype(np.int64), right.indices.astype(np.int64)
    )
    assert np.array_equal(
        left.indptr.astype(np.int64), right.indptr.astype(np.int64)
    )


class TestStitch:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_stitch_reassembles_the_exact_global_matrices(self, world, n_shards):
        multibipartite, matrices = world
        for plan in _plans(multibipartite, n_shards):
            slices = build_shard_slices(matrices, plan, multibipartite)
            stitched = stitch_slices(slices)
            assert stitched.queries == matrices.queries
            for kind in BIPARTITE_KINDS:
                _assert_csr_equal(
                    stitched.incidence[kind], matrices.incidence[kind]
                )

    def test_component_plans_are_closed_hash_plans_usually_not(self, world):
        multibipartite, matrices = world
        plan = ShardPlan.components(multibipartite, 4)
        slices = build_shard_slices(matrices, plan, multibipartite)
        assert all(piece.closed for piece in slices.values())
        hashed = build_shard_slices(
            matrices, ShardPlan.hashed(4), multibipartite
        )
        assert not all(piece.closed for piece in hashed.values())

    def test_shards_partition_the_query_rows(self, world):
        multibipartite, matrices = world
        slices = build_shard_slices(
            matrices, ShardPlan.hashed(4), multibipartite
        )
        rows = np.concatenate([piece.rows for piece in slices.values()])
        assert np.array_equal(np.sort(rows), np.arange(matrices.n_queries))


class TestWalkBitIdentity:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("iterations", WALK_DEPTHS)
    def test_walk_and_expand_match_unsharded_exactly(
        self, world, n_shards, iterations
    ):
        multibipartite, matrices = world
        base = RandomWalkExpander(multibipartite, matrices=matrices)
        config = CompactConfig(size=60, iterations=iterations)
        for plan in _plans(multibipartite, n_shards):
            sharded = ShardedExpander.build(multibipartite, plan, matrices=matrices)
            for seeds in _seed_sets(matrices.queries):
                expected_mass = base.walk_mass(seeds, config)
                actual_mass = sharded.walk_mass(seeds, config)
                assert np.array_equal(expected_mass, actual_mass)
                assert base.expand(seeds, config) == sharded.expand(seeds, config)

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_compact_restrict_and_eq15_solve_match_exactly(self, world, n_shards):
        multibipartite, matrices = world
        base = RandomWalkExpander(multibipartite, matrices=matrices)
        config = CompactConfig(size=40)
        for plan in _plans(multibipartite, n_shards):
            sharded = ShardedExpander.build(multibipartite, plan, matrices=matrices)
            for seeds in _seed_sets(matrices.queries):
                chosen = base.expand(seeds, config)
                assert sharded.expand(seeds, config) == chosen
                ordinals = sorted(matrices.query_index[q] for q in chosen)
                expected = matrices.restrict(ordinals)
                actual = sharded.matrices.restrict_names(chosen)
                assert expected.queries == actual.queries
                for kind in BIPARTITE_KINDS:
                    _assert_csr_equal(
                        expected.incidence[kind], actual.incidence[kind]
                    )
                    _assert_csr_equal(expected.gram[kind], actual.gram[kind])
                    _assert_csr_equal(
                        expected.affinity[kind], actual.affinity[kind]
                    )
                f0 = np.zeros(expected.n_queries)
                f0[expected.query_index[chosen[0]]] = 1.0
                solver_config = RegularizationConfig()
                expected_f = RelevanceSolver(expected, solver_config).solve(f0)
                actual_f = RelevanceSolver(actual, solver_config).solve(f0)
                assert np.array_equal(expected_f, actual_f)

    def test_unknown_seeds_raise_like_unsharded(self, world):
        multibipartite, matrices = world
        sharded = ShardedExpander.build(multibipartite, ShardPlan.hashed(3))
        with pytest.raises(ValueError, match="no seed query"):
            sharded.walk_mass({"never seen query": 1.0}, CompactConfig())


class TestSpillAccounting:
    def test_component_plan_never_spills(self, world):
        multibipartite, matrices = world
        plan = ShardPlan.components(multibipartite, 4)
        sharded = ShardedExpander.build(multibipartite, plan, matrices=matrices)
        config = CompactConfig(size=30)
        for seeds in _seed_sets(matrices.queries):
            sharded.expand(seeds, config)
        stats = sharded.spill_stats()
        assert stats["walks"] == len(_seed_sets(matrices.queries))
        assert stats["spills"] == 0
        assert stats["spill_fraction"] == 0.0

    def test_hash_plan_spills_and_counts_escaped_mass(self, world):
        multibipartite, matrices = world
        plan = ShardPlan.hashed(4)
        sharded = ShardedExpander.build(multibipartite, plan, matrices=matrices)
        sharded.expand({matrices.queries[0]: 1.0}, CompactConfig(size=30))
        stats = sharded.spill_stats()
        assert stats["walks"] == 1
        assert stats["spills"] == 1
        assert stats["spill_fraction"] == 1.0
        assert stats["spilled_mass"] > 0.0

    def test_lazy_loader_attaches_foreign_shards_on_spill(self, world):
        multibipartite, matrices = world
        plan = ShardPlan.hashed(4)
        slices = build_shard_slices(matrices, plan, multibipartite)
        home = {0: slices[0]}
        sharded = ShardedExpander(
            plan, slices=home, loader=lambda s: slices[s], home_shards=[0]
        )
        assert sharded.attached_shards == frozenset([0])
        home_query = slices[0].queries[0]
        sharded.expand({home_query: 1.0}, CompactConfig(size=30))
        assert sharded.attached_shards == frozenset(range(4))
        assert sharded.foreign_attaches == 3


class TestPlanAndUpdates:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(n_shards=0)
        with pytest.raises(ValueError):
            ShardPlan(n_shards=2, kind="modulo")

    def test_component_plan_routes_members_and_falls_back_for_unseen(self, world):
        multibipartite, matrices = world
        plan = ShardPlan.components(multibipartite, 3)
        for query in matrices.queries[:20]:
            assert plan.shard_of(query) == plan.assignment[query]
        assert 0 <= plan.shard_of("totally novel query") < 3

    def test_update_slice_rejects_query_set_changes(self, world):
        multibipartite, matrices = world
        plan = ShardPlan.hashed(2)
        slices = build_shard_slices(matrices, plan, multibipartite)
        sharded = ShardedExpander(plan, slices=slices)
        wrong = slices[0]
        with pytest.raises(ValueError, match="cannot change"):
            sharded.update_slice(
                type(wrong)(
                    shard_id=1,
                    queries=wrong.queries,
                    rows=wrong.rows,
                    n_queries_global=wrong.n_queries_global,
                    closed=wrong.closed,
                    incidence=wrong.incidence,
                    facet_names=wrong.facet_names,
                    gram=wrong.gram,
                )
            )

    def test_update_slice_drops_the_stitched_cache(self, world):
        multibipartite, matrices = world
        plan = ShardPlan.hashed(2)
        slices = build_shard_slices(matrices, plan, multibipartite)
        sharded = ShardedExpander(plan, slices=slices)
        before = sharded._stitched()
        sharded.update_slice(slices[0])
        assert sharded._stitched() is not before
