"""Tests for the entropy-biased weighting (Deng et al., ref [18])."""

import math

import pytest

from repro.graphs.bipartite import Bipartite
from repro.graphs.multibipartite import build_multibipartite
from repro.graphs.weighting import apply_entropy_bias, facet_entropy
from repro.logs.sessionizer import sessionize


class TestFacetEntropy:
    def test_single_query_facet_zero(self):
        b = Bipartite()
        b.add("q1", "url", 3.0)
        assert facet_entropy(b, "url") == 0.0

    def test_uniform_two_queries(self):
        b = Bipartite()
        b.add("q1", "url", 1.0)
        b.add("q2", "url", 1.0)
        assert facet_entropy(b, "url") == pytest.approx(math.log(2))

    def test_skewed_less_than_uniform(self):
        uniform, skewed = Bipartite(), Bipartite()
        for q in ("q1", "q2", "q3", "q4"):
            uniform.add(q, "url", 1.0)
        skewed.add("q1", "url", 97.0)
        for q in ("q2", "q3", "q4"):
            skewed.add(q, "url", 1.0)
        assert facet_entropy(skewed, "url") < facet_entropy(uniform, "url")

    def test_unknown_facet_zero(self):
        assert facet_entropy(Bipartite(), "nothing") == 0.0


class TestApplyEntropyBias:
    def test_focused_facet_keeps_weight(self):
        b = Bipartite()
        b.add("q1", "focused", 5.0)
        weighted = apply_entropy_bias(b)
        # Entropy 0 -> divide by 1 -> unchanged.
        assert weighted.weight("q1", "focused") == 5.0

    def test_hub_facet_suppressed(self):
        b = Bipartite()
        for i in range(10):
            b.add(f"q{i}", "hub", 1.0)
        b.add("q0", "focused", 1.0)
        weighted = apply_entropy_bias(b)
        assert weighted.weight("q0", "hub") < weighted.weight("q0", "focused")

    def test_structure_preserved(self):
        b = Bipartite()
        b.add("q1", "a", 2.0)
        b.add("q2", "b", 1.0)
        weighted = apply_entropy_bias(b)
        assert weighted.queries == b.queries
        assert weighted.n_edges == b.n_edges

    def test_original_untouched(self):
        b = Bipartite()
        b.add("q1", "a", 2.0)
        apply_entropy_bias(b)
        assert b.weight("q1", "a") == 2.0


class TestSchemeOption:
    def test_entropy_scheme_builds(self, table1_log):
        sessions = sessionize(table1_log)
        mb = build_multibipartite(
            table1_log, sessions, weighted=True, scheme="entropy"
        )
        assert mb.n_queries == 6

    def test_schemes_differ(self, table1_log):
        sessions = sessionize(table1_log)
        cfiqf = build_multibipartite(table1_log, sessions, scheme="cfiqf")
        entropy = build_multibipartite(table1_log, sessions, scheme="entropy")
        u_cfiqf = cfiqf.bipartite("U").weight("sun", "www.java.com")
        u_entropy = entropy.bipartite("U").weight("sun", "www.java.com")
        assert u_cfiqf != u_entropy

    def test_unknown_scheme_rejected(self, table1_log):
        with pytest.raises(ValueError, match="scheme"):
            build_multibipartite(
                table1_log, sessionize(table1_log), scheme="tfidf"
            )

    def test_hub_urls_suppressed_in_entropy_scheme(self):
        """The hub-URL pathology: entropy weighting fights it directly."""
        from repro.logs.schema import QueryRecord
        from repro.logs.storage import QueryLog

        rows = []
        # Ten unrelated queries all click the hub; two focused queries
        # click a topical URL.
        for i in range(10):
            rows.append(
                QueryRecord("u", f"topic{i} word{i}", float(i),
                            clicked_url="www.hub.com")
            )
        rows.append(
            QueryRecord("u", "java jvm", 100.0, clicked_url="www.java.com")
        )
        rows.append(
            QueryRecord("u", "java jdk", 200.0, clicked_url="www.java.com")
        )
        log = QueryLog(rows)
        mb = build_multibipartite(
            log, sessionize(log), weighted=True, scheme="entropy"
        )
        u = mb.bipartite("U")
        assert u.weight("java jvm", "www.java.com") > u.weight(
            "topic0 word0", "www.hub.com"
        )
