"""Tests for repro.graphs.bipartite."""

import numpy as np
import pytest

from repro.graphs.bipartite import Bipartite


@pytest.fixture
def small():
    b = Bipartite()
    b.add("sun", "www.java.com", 1.0)
    b.add("sun java", "java.sun.com", 1.0)
    b.add("java", "www.java.com", 1.0)
    return b


class TestConstruction:
    def test_add_accumulates(self):
        b = Bipartite()
        b.add("q", "f", 1.0)
        b.add("q", "f", 2.0)
        assert b.weight("q", "f") == 3.0

    def test_nonpositive_weight_rejected(self):
        b = Bipartite()
        with pytest.raises(ValueError):
            b.add("q", "f", 0.0)
        with pytest.raises(ValueError):
            b.add("q", "f", -1.0)

    def test_empty_nodes_rejected(self):
        b = Bipartite()
        with pytest.raises(ValueError):
            b.add("", "f")
        with pytest.raises(ValueError):
            b.add("q", "")

    def test_scale_facet(self, small):
        small.scale_facet("www.java.com", 2.5)
        assert small.weight("sun", "www.java.com") == 2.5
        assert small.weight("java", "www.java.com") == 2.5
        assert small.weight("sun java", "java.sun.com") == 1.0

    def test_scale_facet_invalid(self, small):
        with pytest.raises(ValueError):
            small.scale_facet("www.java.com", 0.0)


class TestAccessors:
    def test_nodes_sorted(self, small):
        assert small.queries == sorted(small.queries)
        assert small.facets == sorted(small.facets)

    def test_n_edges(self, small):
        assert small.n_edges == 3

    def test_weight_absent_is_zero(self, small):
        assert small.weight("sun", "nowhere.com") == 0.0
        assert small.weight("ghost", "www.java.com") == 0.0

    def test_facets_of_returns_copy(self, small):
        facets = small.facets_of("sun")
        facets["tamper"] = 1.0
        assert "tamper" not in small.facets_of("sun")

    def test_queries_of(self, small):
        assert set(small.queries_of("www.java.com")) == {"sun", "java"}

    def test_facet_query_count(self, small):
        assert small.facet_query_count("www.java.com") == 2
        assert small.facet_query_count("java.sun.com") == 1
        assert small.facet_query_count("nowhere") == 0

    def test_facet_weight_sum(self, small):
        assert small.facet_weight_sum("www.java.com") == 2.0

    def test_query_neighbors(self, small):
        assert small.query_neighbors("sun") == {"java"}
        assert small.query_neighbors("sun java") == set()


class TestDerivation:
    def test_copy_independent(self, small):
        clone = small.copy()
        clone.add("new", "www.java.com")
        assert "new" not in small.queries
        assert clone.weight("sun", "www.java.com") == small.weight(
            "sun", "www.java.com"
        )

    def test_restrict_queries(self, small):
        sub = small.restrict_queries(["sun", "java"])
        assert set(sub.queries) == {"sun", "java"}
        assert sub.weight("sun", "www.java.com") == 1.0
        assert sub.weight("sun java", "java.sun.com") == 0.0

    def test_restrict_to_unknown_is_empty(self, small):
        sub = small.restrict_queries(["ghost"])
        assert sub.queries == []
        assert sub.n_edges == 0

    def test_to_matrix_shape_and_values(self, small):
        query_index = {q: i for i, q in enumerate(small.queries)}
        matrix, facet_index = small.to_matrix(query_index)
        assert matrix.shape == (3, 2)
        row = query_index["sun"]
        col = facet_index["www.java.com"]
        assert matrix[row, col] == 1.0
        assert matrix.sum() == 3.0

    def test_to_matrix_with_fixed_facet_index(self, small):
        query_index = {q: i for i, q in enumerate(small.queries)}
        facet_index = {"www.java.com": 0}
        matrix, returned = small.to_matrix(query_index, facet_index)
        assert matrix.shape == (3, 1)
        assert returned == facet_index
        # Edges to facets outside the fixed index are dropped.
        assert matrix.sum() == 2.0

    def test_to_matrix_queries_outside_graph_get_empty_rows(self, small):
        query_index = {"sun": 0, "ghost": 1}
        matrix, _ = small.to_matrix(query_index)
        assert np.asarray(matrix.sum(axis=1)).ravel()[1] == 0.0
