"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def log_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "log.txt"
    code = main(
        ["generate", str(path), "--users", "15", "--sessions", "8",
         "--seed", "3"]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_perplexity_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perplexity", "x", "--models", "GPT"])


class TestGenerate:
    def test_writes_aol_file(self, log_path):
        text = log_path.read_text()
        assert text.startswith("AnonID\tQuery\tQueryTime")
        assert len(text.splitlines()) > 100

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["generate", str(a), "--users", "5", "--seed", "9"])
        main(["generate", str(b), "--users", "5", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestStats(object):
    def test_prints_summary(self, log_path, capsys):
        assert main(["stats", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "users" in out
        assert "sessions" in out

    def test_max_records(self, log_path, capsys):
        assert main(["stats", str(log_path), "--max-records", "10"]) == 0
        assert "records          10" in capsys.readouterr().out


class TestSuggest:
    def test_suggests_for_known_query(self, log_path, capsys):
        from repro.logs.aol import read_aol

        log = read_aol(log_path)
        probe = max(log.unique_queries, key=log.query_frequency)
        code = main(
            [
                "suggest", str(log_path), probe,
                "--no-personalize", "--k", "5", "--compact-size", "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert " 1. " in out

    def test_personalized_suggest(self, log_path, capsys):
        from repro.logs.aol import read_aol

        log = read_aol(log_path)
        probe = max(log.unique_queries, key=log.query_frequency)
        user = log.users[0]
        code = main(
            [
                "suggest", str(log_path), probe,
                "--user", user, "--k", "5", "--topics", "4",
                "--compact-size", "60",
            ]
        )
        assert code == 0
        assert " 1. " in capsys.readouterr().out

    def test_verbose_prints_fit_stats(self, log_path, capsys):
        from repro.logs.aol import read_aol

        log = read_aol(log_path)
        probe = max(log.unique_queries, key=log.query_frequency)
        code = main(
            [
                "suggest", str(log_path), probe,
                "--k", "5", "--topics", "3", "--compact-size", "60",
                "--verbose",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "UPM fit: engine=fast" in err
        assert "sweeps" in err
        assert "pseudo-log-likelihood" in err

    def test_unknown_query_message(self, log_path, capsys):
        code = main(
            ["suggest", str(log_path), "zzzz qqqq", "--no-personalize"]
        )
        assert code == 0
        assert "no suggestions" in capsys.readouterr().out

    def test_empty_log_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n")
        code = main(["suggest", str(empty), "sun"])
        assert code == 1


class TestIngest:
    def test_streams_tail_and_reports(self, log_path, capsys):
        code = main(
            [
                "ingest", str(log_path),
                "--batch-size", "32",
                "--epoch-every", "2",
                "--k", "5",
                "--compact-size", "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch 0 published" in out
        assert "records/s" in out
        assert "targeted invalidations" in out
        assert "after the stream" in out

    def test_rejects_bad_bootstrap_fraction(self, log_path, capsys):
        assert main(["ingest", str(log_path), "--bootstrap", "1.5"]) == 1
        assert "--bootstrap" in capsys.readouterr().err

    def test_empty_log_error(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n")
        assert main(["ingest", str(empty)]) == 1


class TestReport:
    def test_report_wiring(self, tmp_path, capsys, monkeypatch):
        # Stub the heavy battery: this test checks only the CLI plumbing
        # (config selection, file output); the battery itself is covered by
        # tests/eval/test_report.py.
        import repro.eval.report as report_module

        captured = {}

        def fake_run_report(config):
            captured["config"] = config
            return report_module.Report(config=config)

        monkeypatch.setattr(report_module, "run_report", fake_run_report)
        out_path = tmp_path / "report.md"
        code = main(["report", "--quick", "--output", str(out_path)])
        assert code == 0
        assert captured["config"].n_users == 15  # the --quick scale
        assert "# PQS-DA evaluation report" in out_path.read_text()

    def test_report_prints_to_stdout(self, capsys, monkeypatch):
        import repro.eval.report as report_module

        monkeypatch.setattr(
            report_module,
            "run_report",
            lambda config: report_module.Report(config=config),
        )
        assert main(["report", "--quick"]) == 0
        assert "# PQS-DA evaluation report" in capsys.readouterr().out


class TestMetricsFlow:
    @pytest.fixture(scope="class")
    def snapshot_path(self, log_path, tmp_path_factory):
        """Run ``suggest --metrics-out`` once; reuse the snapshot file."""
        from repro.logs.aol import read_aol

        log = read_aol(log_path)
        probe = max(log.unique_queries, key=log.query_frequency)
        path = tmp_path_factory.mktemp("metrics") / "metrics.json"
        code = main(
            [
                "suggest", str(log_path), probe,
                "--no-personalize", "--k", "5", "--compact-size", "60",
                "--metrics-out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_suggest_writes_loadable_snapshot(self, snapshot_path, capsys):
        import json

        capsys.readouterr()
        snapshot = json.loads(snapshot_path.read_text())
        names = {entry["name"] for entry in snapshot["metrics"]}
        assert "serving.cache.misses" in names
        assert "trace.span.seconds" in names

    def test_stats_renders_metrics_table(self, snapshot_path, capsys):
        assert main(["stats", "--metrics", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "serving.cache.misses" in out
        assert "counter" in out

    def test_stats_metrics_prometheus(self, snapshot_path, capsys):
        code = main(
            ["stats", "--metrics", str(snapshot_path),
             "--format", "prometheus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_serving_cache_misses_total" in out
        assert "# TYPE" in out

    def test_stats_metrics_json_round_trips(self, snapshot_path, capsys):
        import json

        code = main(
            ["stats", "--metrics", str(snapshot_path), "--format", "json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert json.loads(out) == json.loads(snapshot_path.read_text())

    def test_stats_requires_log_or_metrics(self, capsys):
        assert main(["stats"]) == 1
        assert "--metrics" in capsys.readouterr().err

    def test_ingest_metrics_out(self, log_path, tmp_path, capsys):
        import json

        path = tmp_path / "stream_metrics.json"
        code = main(
            [
                "ingest", str(log_path),
                "--batch-size", "32", "--epoch-every", "2",
                "--k", "5", "--compact-size", "40",
                "--metrics-out", str(path),
            ]
        )
        assert code == 0
        names = {
            entry["name"]
            for entry in json.loads(path.read_text())["metrics"]
        }
        assert "stream.ingest.records_ingested" in names
        assert "stream.epochs.current" in names
        assert "serving.cache.invalidation_fanout" in names


class TestServe:
    def test_serves_from_worker_pool(self, log_path, tmp_path, capsys):
        import json

        path = tmp_path / "serve_metrics.json"
        code = main(
            [
                "serve", str(log_path), "amazon",
                "--workers", "1", "--k", "5", "--compact-size", "40",
                "--quiet", "--metrics-out", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 workers" in out
        assert "shared views: True" in out
        names = {
            entry["name"]
            for entry in json.loads(path.read_text())["metrics"]
        }
        assert "serve.pool.requests" in names
        assert "serving.cache.hits" in names

    def test_hot_top_reports_tier_hits(self, log_path, capsys):
        code = main(
            [
                "serve", str(log_path),
                "--workers", "1", "--k", "5", "--compact-size", "40",
                "--hot-top", "5", "--rounds", "2", "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hot tier: 5 precomputed head queries" in out
        assert "answered O(1) from the shared table" in out

    def test_personalize_serves_profiled_users(self, log_path, capsys):
        code = main(
            [
                "serve", str(log_path),
                "--workers", "1", "--k", "5", "--compact-size", "40",
                "--personalize", "--topics", "3", "--upm-iterations", "4",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile plane:" in out
        assert "profile views: True" in out


class TestPerplexity:
    def test_runs_selected_models(self, log_path, capsys):
        code = main(
            [
                "perplexity", str(log_path),
                "--models", "LDA", "UPM",
                "--topics", "4", "--iterations", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LDA" in out
        assert "UPM" in out
