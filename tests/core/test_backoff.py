"""Tests for the term-backoff extension (unseen input queries)."""

import pytest

from repro.core import PQSDA, PQSDAConfig
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def synthetic():
    world = make_world(seed=0)
    return generate_log(world, GeneratorConfig(n_users=20, seed=23))


@pytest.fixture(scope="module")
def pqsda(synthetic):
    return PQSDA.build(
        synthetic.log,
        sessions=synthetic.sessions,
        config=PQSDAConfig(personalize=False),
    )


class TestTermBackoff:
    def test_unseen_query_with_known_terms_gets_suggestions(
        self, synthetic, pqsda
    ):
        # Compose an input that is certainly not a log query but reuses two
        # log terms from different records.
        vocab = synthetic.log.vocabulary
        probe = f"{vocab[0]} {vocab[-1]} zzzznever"
        assert probe not in pqsda.representation
        suggestions = pqsda.suggest(probe, k=8)
        assert suggestions
        assert probe not in suggestions

    def test_suggestions_share_terms_with_input(self, synthetic, pqsda):
        from repro.utils.text import tokenize

        term = max(synthetic.log.vocabulary, key=synthetic.log.term_frequency)
        probe = f"{term} zzzznever"
        suggestions = pqsda.suggest(probe, k=5)
        assert suggestions
        # The top suggestion is reachable from the shared-term seeds, and
        # the seed queries themselves are eligible suggestions.
        assert any(term in tokenize(s) for s in suggestions)

    def test_gibberish_still_empty(self, pqsda):
        assert pqsda.suggest("zzzz qqqq wwww") == []

    def test_backoff_disabled(self, synthetic):
        suggester = PQSDA.build(
            synthetic.log,
            sessions=synthetic.sessions,
            config=PQSDAConfig(personalize=False, term_backoff=False),
        )
        term = synthetic.log.vocabulary[0]
        assert suggester.suggest(f"{term} zzzznever") == []

    def test_seen_queries_unaffected_by_backoff_flag(self, synthetic):
        on = PQSDA.build(
            synthetic.log,
            sessions=synthetic.sessions,
            config=PQSDAConfig(personalize=False, term_backoff=True),
        )
        off = PQSDA.build(
            synthetic.log,
            sessions=synthetic.sessions,
            config=PQSDAConfig(personalize=False, term_backoff=False),
        )
        seed = synthetic.log[0].query
        assert on.suggest(seed, k=8) == off.suggest(seed, k=8)

    def test_backoff_deterministic(self, synthetic, pqsda):
        term = synthetic.log.vocabulary[3]
        probe = f"{term} zzzznever"
        assert pqsda.suggest(probe, k=8) == pqsda.suggest(probe, k=8)

    def test_backoff_seed_cap_config(self):
        with pytest.raises(ValueError):
            PQSDAConfig(backoff_seeds=0)
