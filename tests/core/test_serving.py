"""Tests for the serving fast path: CompactCache, batching, cold vs warm."""

import time

import pytest

from repro.core import PQSDA, PQSDAConfig
from repro.core.serving import CompactCache, cache_key
from repro.baselines.base import SuggestRequest
from repro.diversify.candidates import DiversifyConfig
from repro.diversify.regularization import RegularizationConfig
from repro.graphs.compact import CompactConfig
from repro.graphs.multibipartite import build_multibipartite
from repro.graphs.compact import RandomWalkExpander
from repro.logs.sessionizer import sessionize
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def synthetic_log():
    world = make_world(seed=0)
    return generate_log(
        world,
        GeneratorConfig(n_users=25, mean_sessions_per_user=8, seed=11),
    ).log


def _build(log, cache_size=64):
    return PQSDA.build(
        log,
        config=PQSDAConfig(
            compact=CompactConfig(size=60),
            diversify=DiversifyConfig(k=8, candidate_pool=15),
            personalize=False,
            cache_size=cache_size,
        ),
    )


def _probe_queries(log, n=8):
    seen: list[str] = []
    for record in log:
        if record.has_click and record.query not in seen:
            seen.append(record.query)
        if len(seen) >= n:
            break
    return seen


class TestSuggestBatch:
    def test_batch_matches_sequential(self, synthetic_log):
        suggester = _build(synthetic_log)
        probes = _probe_queries(synthetic_log)
        requests = [SuggestRequest(query=q, k=8) for q in probes]
        sequential = [suggester.suggest(q, k=8) for q in probes]
        assert suggester.suggest_batch(requests) == sequential
        assert suggester.suggest_batch(requests, n_workers=4) == sequential

    def test_batch_matches_sequential_with_users(self, synthetic_log):
        suggester = _build(synthetic_log)
        probes = _probe_queries(synthetic_log, n=4)
        users = sorted(synthetic_log.users)[:2]
        requests = [
            SuggestRequest(query=q, k=5, user_id=users[i % 2])
            for i, q in enumerate(probes)
        ]
        sequential = [
            suggester.suggest(r.query, k=r.k, user_id=r.user_id)
            for r in requests
        ]
        assert suggester.suggest_batch(requests, n_workers=3) == sequential

    def test_unknown_query_in_batch(self, synthetic_log):
        suggester = _build(synthetic_log)
        requests = [SuggestRequest(query="zzz unseen zzz qqq", k=5)]
        batch = suggester.suggest_batch(requests)
        assert batch == [suggester.suggest("zzz unseen zzz qqq", k=5)]

    def test_request_validation(self):
        with pytest.raises(ValueError):
            SuggestRequest(query="a", k=0)

    def test_worker_validation(self, synthetic_log):
        suggester = _build(synthetic_log)
        with pytest.raises(ValueError):
            suggester.suggest_batch([SuggestRequest(query="a")], n_workers=0)


class TestCompactCache:
    def test_hit_returns_same_entry(self, synthetic_log):
        suggester = _build(synthetic_log)
        probes = _probe_queries(synthetic_log, n=3)
        for q in probes:
            suggester.suggest(q, k=5)
        stats = suggester.cache_stats
        assert stats.misses == len(probes)
        assert stats.hits == 0
        for q in probes:
            suggester.suggest(q, k=5)
        stats = suggester.cache_stats
        assert stats.hits == len(probes)
        assert stats.misses == len(probes)
        assert stats.size == len(probes)
        assert 0.0 < stats.hit_rate < 1.0

    def test_warm_results_equal_cold(self, synthetic_log):
        suggester = _build(synthetic_log)
        probes = _probe_queries(synthetic_log)
        cold = [suggester.suggest(q, k=8) for q in probes]
        warm = [suggester.suggest(q, k=8) for q in probes]
        assert warm == cold

    def test_warm_not_slower_than_cold(self, synthetic_log):
        suggester = _build(synthetic_log)
        probes = _probe_queries(synthetic_log)
        suggester.suggest(probes[0], k=8)  # absorb one-time lazy costs
        suggester.serving_cache.clear()
        start = time.perf_counter()
        for q in probes:
            suggester.suggest(q, k=8)
        cold_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for q in probes:
            suggester.suggest(q, k=8)
        warm_elapsed = time.perf_counter() - start
        # The warm path skips expansion + restriction entirely; generous
        # slack keeps the assertion robust on noisy CI machines.
        assert warm_elapsed < cold_elapsed * 1.5

    def test_lru_eviction_bound(self, synthetic_log):
        suggester = _build(synthetic_log, cache_size=2)
        probes = _probe_queries(synthetic_log, n=4)
        for q in probes:
            suggester.suggest(q, k=5)
        stats = suggester.cache_stats
        assert stats.size <= 2
        assert stats.maxsize == 2
        assert stats.evictions >= len(probes) - 2

    def test_evicted_entry_rebuilt_identically(self, synthetic_log):
        suggester = _build(synthetic_log, cache_size=1)
        probes = _probe_queries(synthetic_log, n=2)
        first = suggester.suggest(probes[0], k=5)
        suggester.suggest(probes[1], k=5)  # evicts probes[0]'s entry
        assert suggester.suggest(probes[0], k=5) == first

    def test_cache_size_validation(self, synthetic_log):
        mb = build_multibipartite(synthetic_log, sessionize(synthetic_log))
        expander = RandomWalkExpander(mb)
        with pytest.raises(ValueError):
            CompactCache(expander, maxsize=0)

    def test_clear_keeps_counters(self, synthetic_log):
        suggester = _build(synthetic_log)
        probes = _probe_queries(synthetic_log, n=2)
        for q in probes:
            suggester.suggest(q, k=5)
        suggester.serving_cache.clear()
        stats = suggester.cache_stats
        assert stats.size == 0
        assert stats.misses == len(probes)


class TestCacheKey:
    def test_distinguishes_configs(self):
        seeds = {"sun": 1.0}
        base = cache_key(seeds, CompactConfig(size=50), RegularizationConfig())
        assert base == cache_key(
            seeds, CompactConfig(size=50), RegularizationConfig()
        )
        assert base != cache_key(
            seeds, CompactConfig(size=60), RegularizationConfig()
        )
        assert base != cache_key(
            {"sun": 0.5}, CompactConfig(size=50), RegularizationConfig()
        )
        assert base != cache_key(
            seeds,
            CompactConfig(size=50),
            RegularizationConfig(alphas={"U": 2.0, "S": 1.0, "T": 1.0}),
        )
