"""End-to-end observability: spans, mirrored counters, export parity."""

import json

import pytest

from repro.baselines.base import SuggestRequest
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.graphs.compact import CompactConfig
from repro.obs.export import to_json, to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import SPAN_HISTOGRAM
from repro.personalize.upm import UPMConfig
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

UPM_ITERATIONS = 4


@pytest.fixture(scope="module")
def synthetic_log():
    world = make_world(seed=0)
    return generate_log(
        world,
        GeneratorConfig(n_users=20, mean_sessions_per_user=8, seed=11),
    ).log


@pytest.fixture(scope="module")
def instrumented():
    """A personalized suggester built with a registry attached end to end."""
    world = make_world(seed=0)
    log = generate_log(
        world,
        GeneratorConfig(n_users=20, mean_sessions_per_user=8, seed=11),
    ).log
    registry = MetricsRegistry()
    suggester = PQSDA.build(
        log,
        config=PQSDAConfig(
            compact=CompactConfig(size=60),
            diversify=DiversifyConfig(k=8, candidate_pool=15),
            upm=UPMConfig(n_topics=4, iterations=UPM_ITERATIONS, seed=0),
        ),
        registry=registry,
    )
    return suggester, registry, log


def _known_probe(suggester, log):
    for record in log:
        if record.query in suggester.representation:
            return record.query
    raise AssertionError("no known probe query")


class TestSpanTree:
    def test_single_suggest_yields_staged_trace(self, instrumented):
        suggester, registry, log = instrumented
        probe = _known_probe(suggester, log)
        suggester.suggest(probe, k=8)
        root = suggester.last_trace
        assert root is not None
        assert root.name == "suggest"
        for stage in ("expand", "solve", "walk"):
            span = root.find(stage)
            assert span is not None, f"missing {stage} span"
            assert span.seconds > 0.0
        assert root.seconds >= root.find("expand").seconds

    def test_rerank_span_when_personalized(self, instrumented):
        suggester, registry, log = instrumented
        assert suggester.profiles is not None
        user = next(iter(suggester.profiles.model.corpus.doc_index))
        probe = _known_probe(suggester, log)
        suggester.suggest(probe, k=8, user_id=user)
        root = suggester.last_trace
        assert root.find("rerank") is not None
        assert root.find("rerank").seconds > 0.0

    def test_span_histogram_populated(self, instrumented):
        suggester, registry, log = instrumented
        probe = _known_probe(suggester, log)
        suggester.suggest(probe, k=8)
        for stage in ("suggest", "expand", "solve", "walk"):
            histogram = registry.histogram(
                SPAN_HISTOGRAM, labels={"span": stage}
            )
            assert histogram.count >= 1
            assert histogram.sum > 0.0


class TestMirroredCounters:
    def test_cache_counters_match_cache_stats(self, instrumented):
        suggester, registry, log = instrumented
        probe = _known_probe(suggester, log)
        suggester.suggest(probe, k=8)
        suggester.suggest(probe, k=8)
        stats = suggester.cache_stats
        assert registry.counter("serving.cache.hits").value == stats.hits
        assert registry.counter("serving.cache.misses").value == stats.misses
        assert registry.gauge("serving.cache.size").value == stats.size
        assert stats.lookups == stats.hits + stats.misses

    def test_upm_training_routed_through_registry(self, instrumented):
        suggester, registry, log = instrumented
        assert registry.counter("upm.fits").value == 1
        assert registry.counter("upm.sweeps").value == UPM_ITERATIONS
        assert registry.histogram("upm.sweep.seconds").count == UPM_ITERATIONS
        model = suggester.profiles.model
        stats = model.fit_stats
        series = model.fit_metrics.series("upm.sweep.log_likelihood")
        assert series.values == stats.sweep_log_likelihood
        assert registry.gauge("upm.sweep.log_likelihood").value == (
            stats.sweep_log_likelihood[-1]
        )

    def test_batch_queue_depth_returns_to_zero(self, instrumented):
        suggester, registry, log = instrumented
        probe = _known_probe(suggester, log)
        depth = registry.gauge("serving.batch.queue_depth")
        requests = [SuggestRequest(query=probe, k=5) for _ in range(3)]
        suggester.suggest_batch(requests, n_workers=2)
        assert depth.value == 0


class TestExportParity:
    def test_json_and_prometheus_render_the_same_snapshot(self, instrumented):
        suggester, registry, log = instrumented
        probe = _known_probe(suggester, log)
        suggester.suggest(probe, k=8)
        snapshot = registry.snapshot()
        direct = to_prometheus(snapshot)
        via_json = to_prometheus(json.loads(to_json(snapshot)))
        assert via_json == direct
        # The serving metrics actually reach the exposition.
        assert "repro_serving_cache_misses_total" in direct
        assert "repro_trace_span_seconds_bucket" in direct


class TestDetached:
    def test_null_default_keeps_serving_untraced(self, synthetic_log):
        suggester = PQSDA.build(
            synthetic_log,
            config=PQSDAConfig(
                compact=CompactConfig(size=60),
                diversify=DiversifyConfig(k=8, candidate_pool=15),
                personalize=False,
            ),
        )
        probe = _known_probe(suggester, synthetic_log)
        result = suggester.suggest(probe, k=8)
        assert suggester.last_trace is None
        assert suggester.metrics.snapshot() == {"metrics": []}

        # Attaching later changes observability, never results.
        registry = MetricsRegistry()
        suggester.attach_metrics(registry)
        assert suggester.suggest(probe, k=8) == result
        assert suggester.last_trace is not None

        # Detaching returns to the null objects.
        suggester.attach_metrics(None)
        assert suggester.suggest(probe, k=8) == result
        assert suggester.last_trace is None
