"""Tests for the end-to-end PQSDA suggester."""

import pytest

from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.graphs.compact import CompactConfig
from repro.logs.schema import QueryRecord
from repro.personalize.upm import UPMConfig
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def synthetic():
    world = make_world(seed=0)
    return generate_log(
        world, GeneratorConfig(n_users=25, mean_sessions_per_user=8, seed=17)
    )


@pytest.fixture(scope="module")
def pqsda(synthetic):
    config = PQSDAConfig(
        compact=CompactConfig(size=100),
        diversify=DiversifyConfig(k=10),
        upm=UPMConfig(n_topics=8, iterations=20, seed=0),
    )
    return PQSDA.build(
        synthetic.log, sessions=synthetic.sessions, config=config
    )


class TestBuild:
    def test_profiles_built(self, pqsda, synthetic):
        assert pqsda.profiles is not None
        assert len(pqsda.profiles) == len(synthetic.log.users)

    def test_personalization_disabled_skips_upm(self, synthetic):
        config = PQSDAConfig(personalize=False)
        suggester = PQSDA.build(
            synthetic.log, sessions=synthetic.sessions, config=config
        )
        assert suggester.profiles is None

    def test_sessions_derived_when_missing(self, synthetic):
        config = PQSDAConfig(
            personalize=False, compact=CompactConfig(size=50)
        )
        suggester = PQSDA.build(synthetic.log, config=config)
        seed = suggester.representation.queries[0]
        assert isinstance(suggester.suggest(seed, k=3), list)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PQSDAConfig(personalization_weight=-1)


class TestSuggest:
    def test_basic_contract(self, pqsda, synthetic):
        seed = synthetic.log[0].query
        suggestions = pqsda.suggest(seed, k=8)
        assert len(suggestions) <= 8
        assert seed not in suggestions
        assert len(set(suggestions)) == len(suggestions)

    def test_unknown_query_empty(self, pqsda):
        assert pqsda.suggest("totally unknown query") == []

    def test_personalization_changes_order_for_some_users(
        self, pqsda, synthetic
    ):
        seeds = [r.query for r in synthetic.log[:40] if r.has_click][:10]
        users = synthetic.log.users[:6]
        observed_difference = False
        for seed in seeds:
            rankings = {
                tuple(pqsda.suggest(seed, k=8, user_id=u)) for u in users
            }
            if len(rankings) > 1:
                observed_difference = True
                break
        assert observed_difference

    def test_anonymous_equals_diversified_prefix(self, pqsda, synthetic):
        seed = synthetic.log[0].query
        anonymous = pqsda.suggest(seed, k=6)
        diversified = pqsda.diversified_candidates(seed).top(6)
        assert anonymous == diversified

    def test_context_usable(self, pqsda, synthetic):
        session = synthetic.sessions[5]
        if len(session) < 2:
            pytest.skip("need a multi-query session")
        context = session.search_context(1)
        suggestions = pqsda.suggest(
            session.records[1].query,
            k=5,
            context=context,
            timestamp=session.records[1].timestamp,
        )
        for record in context:
            assert record.query not in suggestions

    def test_deterministic(self, pqsda, synthetic):
        seed = synthetic.log[0].query
        a = pqsda.suggest(seed, k=8, user_id="user0001")
        b = pqsda.suggest(seed, k=8, user_id="user0001")
        assert a == b

    def test_diversified_candidates_empty_for_unknown(self, pqsda):
        result = pqsda.diversified_candidates("zzzz")
        assert len(result) == 0


class TestAmbiguousQueryBehaviour:
    def test_sun_suggestions_cover_facets_and_personalize(self, synthetic):
        if "sun" not in {r.query for r in synthetic.log}:
            pytest.skip("log lacks the bare 'sun' query")
        config = PQSDAConfig(
            compact=CompactConfig(size=120),
            upm=UPMConfig(n_topics=8, iterations=20, seed=0),
        )
        suggester = PQSDA.build(
            synthetic.log, sessions=synthetic.sessions, config=config
        )
        suggestions = suggester.suggest("sun", k=10)
        assert suggestions
