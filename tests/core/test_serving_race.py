"""CompactCache generation invariant: rebind/get races never resurrect entries.

The bug these tests pin: ``get`` builds entries *outside* the lock, so a
build can start under epoch A, have a ``rebind``/``invalidate`` flush the
cache mid-build, and then insert an epoch-A entry into the post-flush
cache — where nothing can ever evict it (its ``query_set`` no longer
intersects any future delta of the new epoch).  The fix snapshots a
generation counter at build start and discards (but still serves) the
entry when the generation moved by insert time.
"""

import threading

import pytest

from repro.core.serving import CompactCache
from repro.diversify.regularization import RegularizationConfig
from repro.graphs.compact import CompactConfig, RandomWalkExpander
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize
from repro.obs.registry import MetricsRegistry
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def expander():
    world = make_world(seed=0)
    log = generate_log(
        world,
        GeneratorConfig(n_users=20, mean_sessions_per_user=8, seed=7),
    ).log
    multibipartite = build_multibipartite(log, sessionize(log))
    return RandomWalkExpander(multibipartite)


@pytest.fixture(scope="module")
def probes(expander):
    queries = sorted(expander.matrices.query_index)
    assert len(queries) >= 8
    return queries[:8]


class _GatedExpander:
    """Wraps an expander so ``expand`` blocks until released.

    Lets a test force the exact interleaving: build starts (``entered``
    fires), the test mutates the cache, then the build finishes
    (``release``).
    """

    def __init__(self, inner: RandomWalkExpander) -> None:
        self._inner = inner
        self.entered = threading.Event()
        self.release = threading.Event()

    @property
    def matrices(self):
        return self._inner.matrices

    def expand(self, seeds, compact):
        self.entered.set()
        assert self.release.wait(10.0), "gated build never released"
        return self._inner.expand(seeds, compact)


COMPACT = CompactConfig(size=30)
REG = RegularizationConfig()


class TestDeterministicRace:
    def _racing_get(self, cache, query):
        """Run one ``cache.get`` in a thread; return (thread, results)."""
        results = {}

        def run():
            results["entry"] = cache.get({query: 1.0}, COMPACT, REG)

        thread = threading.Thread(target=run)
        thread.start()
        return thread, results

    def test_build_straddling_rebind_is_served_but_not_inserted(
        self, expander, probes
    ):
        gated = _GatedExpander(expander)
        cache = CompactCache(gated, maxsize=8)
        thread, results = self._racing_get(cache, probes[0])
        assert gated.entered.wait(10.0)
        # The epoch swap lands while the build is in flight.
        cache.rebind(expander, None)
        gated.release.set()
        thread.join(10.0)

        entry = results["entry"]
        assert entry is not None  # the caller is still served
        assert probes[0] in entry.query_set
        stats = cache.stats
        assert stats.size == 0  # the stale build was NOT inserted
        assert stats.stale_discards == 1
        assert stats.misses == 1
        assert stats.hits == 0
        assert stats.lookups == 1
        # A fresh lookup misses again and builds under the new epoch.
        rebuilt = cache.get({probes[0]: 1.0}, COMPACT, REG)
        assert rebuilt.query_set == entry.query_set
        assert cache.stats.size == 1
        assert cache.stats.stale_discards == 1

    def test_build_straddling_targeted_invalidate_is_discarded(
        self, expander, probes
    ):
        gated = _GatedExpander(expander)
        cache = CompactCache(gated, maxsize=8)
        thread, results = self._racing_get(cache, probes[0])
        assert gated.entered.wait(10.0)
        cache.invalidate([probes[0]])
        gated.release.set()
        thread.join(10.0)
        assert results["entry"] is not None
        assert cache.stats.size == 0
        assert cache.stats.stale_discards == 1

    def test_generation_bumps(self, expander):
        cache = CompactCache(expander, maxsize=4)
        assert cache.generation == 0
        cache.rebind(expander, None)
        assert cache.generation == 1
        cache.invalidate(["anything"])
        assert cache.generation == 2
        cache.rebind(expander, ["anything"])
        # Targeted rebind bumps once itself and once via invalidate.
        assert cache.generation == 4
        cache.invalidate([])  # empty set is a no-op
        assert cache.generation == 4

    def test_stale_discard_counted_in_registry(self, expander, probes):
        gated = _GatedExpander(expander)
        cache = CompactCache(gated, maxsize=8)
        registry = MetricsRegistry()
        cache.attach_metrics(registry)
        thread, _ = self._racing_get(cache, probes[0])
        assert gated.entered.wait(10.0)
        cache.rebind(expander, None)
        gated.release.set()
        thread.join(10.0)
        assert registry.counter("serving.cache.stale_discards").value == 1
        assert registry.gauge("serving.cache.size").value == 0


class TestStressAccounting:
    def test_concurrent_get_invalidate_rebind(self, expander, probes):
        """Hammer get/invalidate/rebind; the counters must add up exactly.

        Accounting invariant: every ``get`` is counted exactly once as a
        hit or a miss, whatever rebinds land around it — and after the
        readers drain and a final flush, nothing stale survives in the
        cache.
        """
        cache = CompactCache(expander, maxsize=4)
        n_readers = 4
        gets_per_reader = 30
        stop = threading.Event()
        errors = []

        def reader():
            try:
                for i in range(gets_per_reader):
                    query = probes[i % len(probes)]
                    entry = cache.get({query: 1.0}, COMPACT, REG)
                    assert query in entry.query_set
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer():
            i = 0
            while not stop.is_set():
                if i % 3 == 0:
                    cache.rebind(expander, None)
                elif i % 3 == 1:
                    cache.invalidate([probes[i % len(probes)]])
                else:
                    cache.rebind(expander, [probes[i % len(probes)]])
                i += 1

        readers = [threading.Thread(target=reader) for _ in range(n_readers)]
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        for t in readers:
            t.start()
        for t in readers:
            t.join(60.0)
        stop.set()
        writer_thread.join(10.0)
        assert not errors

        stats = cache.stats
        assert stats.lookups == stats.hits + stats.misses
        assert stats.lookups == n_readers * gets_per_reader
        assert stats.size <= stats.maxsize
        # Nothing in flight anymore: a wholesale flush must leave the
        # cache truly empty (a pre-fix stale insert would survive here
        # as an unevictable entry).
        cache.rebind(expander, None)
        assert cache.stats.size == 0
