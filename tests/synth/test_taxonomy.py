"""Tests for repro.synth.taxonomy."""

import numpy as np
import pytest

from repro.synth.taxonomy import Category, Taxonomy, default_taxonomy


class TestCategory:
    def test_str_is_odp_path(self):
        cat = Category(("Computers", "Programming", "Java"))
        assert str(cat) == "Computers/Programming/Java"

    def test_depth_top_leaf_name(self):
        cat = Category(("Science", "Astronomy"))
        assert cat.depth == 2
        assert cat.top == "Science"
        assert cat.leaf_name == "Astronomy"

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Category(())
        with pytest.raises(ValueError):
            Category(("A", ""))

    def test_is_ancestor_of(self):
        parent = Category(("Computers",))
        child = Category(("Computers", "Hardware"))
        assert parent.is_ancestor_of(child)
        assert not child.is_ancestor_of(parent)
        assert not parent.is_ancestor_of(parent)

    def test_hashable(self):
        assert len({Category(("A",)), Category(("A",))}) == 1


class TestTaxonomy:
    @pytest.fixture
    def taxonomy(self):
        return default_taxonomy()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy({})

    def test_default_shape(self, taxonomy):
        assert len(taxonomy.leaves) == 27
        assert taxonomy.max_depth == 3

    def test_every_leaf_is_category(self, taxonomy):
        for leaf in taxonomy.leaves:
            assert leaf in taxonomy

    def test_internal_nodes_are_categories_too(self, taxonomy):
        assert taxonomy.get("Computers") in taxonomy
        assert taxonomy.get("Computers/Programming") in taxonomy

    def test_get_by_string_and_iterable(self, taxonomy):
        by_str = taxonomy.get("Science/Astronomy")
        by_iter = taxonomy.get(["Science", "Astronomy"])
        assert by_str == by_iter

    def test_get_unknown_raises(self, taxonomy):
        with pytest.raises(KeyError, match="no category"):
            taxonomy.get("Nope/Nothing")

    def test_leaf_ordinal_roundtrip(self, taxonomy):
        for i, leaf in enumerate(taxonomy.leaves):
            assert taxonomy.leaf_ordinal(leaf) == i

    def test_leaf_ordinal_rejects_internal(self, taxonomy):
        with pytest.raises(KeyError):
            taxonomy.leaf_ordinal(taxonomy.get("Computers"))

    def test_sample_leaf(self, taxonomy):
        rng = np.random.default_rng(0)
        leaf = taxonomy.sample_leaf(rng)
        assert leaf in taxonomy.leaves


class TestPathSimilarity:
    @pytest.fixture
    def taxonomy(self):
        return default_taxonomy()

    def test_identical_is_one(self, taxonomy):
        java = taxonomy.get("Computers/Programming/Java")
        assert taxonomy.path_similarity(java, java) == 1.0

    def test_different_tops_is_zero(self, taxonomy):
        java = taxonomy.get("Computers/Programming/Java")
        astro = taxonomy.get("Science/Astronomy")
        assert taxonomy.path_similarity(java, astro) == 0.0

    def test_siblings_share_prefix(self, taxonomy):
        java = taxonomy.get("Computers/Programming/Java")
        python = taxonomy.get("Computers/Programming/Python")
        assert taxonomy.path_similarity(java, python) == pytest.approx(2 / 3)

    def test_eq34_normalizes_by_longest_path(self, taxonomy):
        # |PF| / max(|A|, |B|): Computers vs Computers/Programming/Java.
        top = taxonomy.get("Computers")
        java = taxonomy.get("Computers/Programming/Java")
        assert taxonomy.path_similarity(top, java) == pytest.approx(1 / 3)

    def test_symmetry(self, taxonomy):
        a = taxonomy.get("Computers/Hardware")
        b = taxonomy.get("Computers/Programming/Java")
        assert taxonomy.path_similarity(a, b) == pytest.approx(
            taxonomy.path_similarity(b, a)
        )

    def test_foreign_category_rejected(self, taxonomy):
        with pytest.raises(KeyError):
            taxonomy.path_similarity(
                Category(("Alien",)), taxonomy.get("Computers")
            )

    def test_all_pairs_bounded(self, taxonomy):
        leaves = taxonomy.leaves
        for a in leaves[:6]:
            for b in leaves[:6]:
                assert 0.0 <= taxonomy.path_similarity(a, b) <= 1.0
