"""Tests for repro.synth.generator and repro.synth.oracle."""

import numpy as np
import pytest

from repro.logs.sessionizer import sessionize
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.oracle import Oracle, RaterPanel
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def world():
    return make_world(seed=0)


@pytest.fixture(scope="module")
def synthetic(world):
    config = GeneratorConfig(n_users=20, mean_sessions_per_user=8, seed=11)
    return generate_log(world, config)


class TestGeneratorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0},
            {"mean_sessions_per_user": 0},
            {"min_sessions_per_user": 0},
            {"click_probability": 1.5},
            {"ambiguous_rate": -0.1},
            {"span_days": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)


class TestGenerateLog:
    def test_user_count(self, synthetic):
        assert len(synthetic.population) == 20
        assert len(synthetic.log.users) == 20

    def test_min_sessions_respected(self, synthetic):
        for user_id in synthetic.log.users:
            assert len(synthetic.sessions_of(user_id)) >= 3

    def test_every_record_has_intent(self, synthetic):
        for record in synthetic.log:
            assert record.record_id in synthetic.record_intent

    def test_session_intents_cover_all_sessions(self, synthetic):
        for session in synthetic.sessions:
            assert session.session_id in synthetic.session_intent

    def test_sessions_partition_log(self, synthetic):
        ids = sorted(
            record.record_id
            for session in synthetic.sessions
            for record in session
        )
        assert ids == list(range(len(synthetic.log)))

    def test_timestamps_increase_within_session(self, synthetic):
        for session in synthetic.sessions:
            stamps = [r.timestamp for r in session]
            assert stamps == sorted(stamps)

    def test_clicked_urls_exist_in_web(self, world, synthetic):
        for record in synthetic.log:
            if record.has_click:
                assert record.clicked_url in world.web

    def test_most_clicks_match_intent(self, world, synthetic):
        matches, total = 0, 0
        for record in synthetic.log:
            if not record.has_click:
                continue
            total += 1
            intent = synthetic.record_intent[record.record_id]
            if world.web.category_of(record.clicked_url) == intent:
                matches += 1
        assert total > 0
        assert matches / total > 0.85  # noise_click_probability = 0.05

    def test_deterministic(self, world):
        config = GeneratorConfig(n_users=5, seed=99)
        a = generate_log(world, config)
        b = generate_log(world, config)
        assert [r.query for r in a.log] == [r.query for r in b.log]
        assert [r.clicked_url for r in a.log] == [r.clicked_url for r in b.log]

    def test_different_seeds_differ(self, world):
        a = generate_log(world, GeneratorConfig(n_users=5, seed=1))
        b = generate_log(world, GeneratorConfig(n_users=5, seed=2))
        assert [r.query for r in a.log] != [r.query for r in b.log]

    def test_ambiguous_terms_appear(self, world, synthetic):
        ambiguous = set(world.vocabulary.ambiguous_terms)
        heads = {r.query.split()[0] for r in synthetic.log}
        assert heads & ambiguous

    def test_sessionizer_recovers_ground_truth_boundaries(self, synthetic):
        # Generated inter-session gaps are >= 2h, so the 30-min sessionizer
        # must never merge two ground-truth sessions.
        recovered = sessionize(synthetic.log)
        assert len(recovered) >= len(synthetic.sessions)

    def test_query_category_is_dominant_intent(self, synthetic):
        # Every mapped query string is one of the log's normalized queries.
        from repro.utils.text import normalize_query

        normalized = {normalize_query(r.query) for r in synthetic.log}
        assert set(synthetic.query_category) == normalized


class TestOracle:
    @pytest.fixture(scope="class")
    def oracle(self, world, synthetic):
        return Oracle(world, synthetic)

    def test_category_of_generated_query(self, synthetic, oracle):
        record = synthetic.log[0]
        category = oracle.category_of_query(record.query)
        assert category is not None

    def test_category_of_unseen_query_falls_back_to_classifier(
        self, world, oracle
    ):
        assert oracle.category_of_query("jvm classpath") == world.taxonomy.get(
            "Computers/Programming/Java"
        )

    def test_category_of_gibberish_is_none(self, oracle):
        assert oracle.category_of_query("zzzz qqqq") is None

    def test_category_of_url(self, world, oracle):
        page = world.web.pages[0]
        assert oracle.category_of_url(page.url) == page.category
        assert oracle.category_of_url("www.unknown.com") is None

    def test_intent_of_session(self, synthetic, oracle):
        session = synthetic.sessions[0]
        assert (
            oracle.intent_of_session(session.session_id)
            == synthetic.session_intent[session.session_id]
        )
        with pytest.raises(KeyError):
            oracle.intent_of_session("ghost/0")

    def test_user_interest_weight(self, synthetic, oracle):
        user = synthetic.population.get(synthetic.log.users[0])
        leaf = user.interest_leaves[0]
        assert oracle.user_interest_weight(user.user_id, leaf) > 0
        others = [
            c
            for c in oracle.world.taxonomy.leaves
            if c not in user.interests
        ]
        assert oracle.user_interest_weight(user.user_id, others[0]) == 0.0

    def test_query_similarity_same_topic(self, oracle):
        sim = oracle.query_similarity("jvm download", "java applet")
        assert sim == 1.0

    def test_query_similarity_cross_topic(self, oracle):
        sim = oracle.query_similarity("jvm download", "telescope orbit")
        assert sim == 0.0

    def test_query_similarity_unknown_is_zero(self, oracle):
        assert oracle.query_similarity("zzzz", "jvm") == 0.0


class TestRaterPanel:
    @pytest.fixture(scope="class")
    def oracle(self, world, synthetic):
        return Oracle(world, synthetic)

    def test_on_topic_beats_off_topic(self, synthetic, oracle):
        session = synthetic.sessions[0]
        intent = synthetic.session_intent[session.session_id]
        panel = RaterPanel(oracle, noise_sd=0.0, seed=0)
        on_topic = panel.rate(session.records[0].query, session, intent)
        off_topic = panel.rate("zzzz qqqq", session, intent)
        assert on_topic > off_topic

    def test_ratings_on_scale_without_noise(self, synthetic, oracle):
        session = synthetic.sessions[0]
        intent = synthetic.session_intent[session.session_id]
        panel = RaterPanel(oracle, n_raters=1, noise_sd=0.0, seed=0)
        rating = panel.rate(session.records[0].query, session, intent)
        assert rating in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

    def test_ratings_bounded_with_noise(self, synthetic, oracle):
        session = synthetic.sessions[0]
        intent = synthetic.session_intent[session.session_id]
        panel = RaterPanel(oracle, noise_sd=0.5, seed=0)
        for record in session:
            assert 0.0 <= panel.rate(record.query, session, intent) <= 1.0

    def test_invalid_args(self, oracle):
        with pytest.raises(ValueError):
            RaterPanel(oracle, n_raters=0)
        with pytest.raises(ValueError):
            RaterPanel(oracle, noise_sd=-1)
        with pytest.raises(ValueError):
            RaterPanel(oracle, profile_weight=2.0)
