"""Tests for repro.synth.vocabulary."""

import numpy as np
import pytest

from repro.synth.taxonomy import default_taxonomy
from repro.synth.vocabulary import (
    AMBIGUOUS_TERMS,
    SEED_WORDS,
    Vocabulary,
    build_vocabulary,
)


@pytest.fixture(scope="module")
def taxonomy():
    return default_taxonomy()


@pytest.fixture(scope="module")
def vocabulary(taxonomy):
    return build_vocabulary(taxonomy)


class TestBuildVocabulary:
    def test_every_leaf_has_words(self, taxonomy, vocabulary):
        for leaf in taxonomy.leaves:
            assert len(vocabulary.words_of(leaf)) >= 40

    def test_seed_words_present(self, taxonomy, vocabulary):
        java = taxonomy.get("Computers/Programming/Java")
        assert "jvm" in vocabulary.words_of(java)

    def test_seed_paths_all_exist_in_default_taxonomy(self, taxonomy):
        for path in SEED_WORDS:
            taxonomy.get(path)  # must not raise

    def test_deterministic(self, taxonomy):
        a = build_vocabulary(taxonomy)
        b = build_vocabulary(taxonomy)
        for leaf in taxonomy.leaves:
            assert a.words_of(leaf) == b.words_of(leaf)

    def test_empty_leaf_vocabulary_rejected(self, taxonomy):
        with pytest.raises(ValueError, match="empty vocabulary"):
            Vocabulary(taxonomy, {})


class TestAmbiguousTerms:
    def test_paper_sun_example(self, taxonomy, vocabulary):
        leaves = {str(leaf) for leaf in vocabulary.leaves_of_term("sun")}
        assert leaves == {
            "Computers/Programming/Java",
            "Science/Astronomy",
            "News/Newspapers",
        }

    def test_is_ambiguous(self, vocabulary):
        assert vocabulary.is_ambiguous("sun")
        assert not vocabulary.is_ambiguous("jvm")
        assert not vocabulary.is_ambiguous("nonexistent-word")

    def test_all_declared_terms_are_ambiguous(self, vocabulary):
        for term in AMBIGUOUS_TERMS:
            assert term in vocabulary.ambiguous_terms

    def test_leaves_of_unknown_term_empty(self, vocabulary):
        assert vocabulary.leaves_of_term("zzzz") == []


class TestSampling:
    def test_sample_terms_from_leaf(self, taxonomy, vocabulary):
        java = taxonomy.get("Computers/Programming/Java")
        rng = np.random.default_rng(0)
        terms = vocabulary.sample_terms(java, 5, rng)
        assert len(terms) == 5
        assert len(set(terms)) == 5  # no replacement
        for term in terms:
            assert term in vocabulary.words_of(java)

    def test_bias_shifts_distribution(self, taxonomy, vocabulary):
        java = taxonomy.get("Computers/Programming/Java")
        words = vocabulary.words_of(java)
        bias = np.zeros(len(words))
        target = words.index("maven")
        bias[target] = 1.0
        rng = np.random.default_rng(0)
        terms = vocabulary.sample_terms(java, 1, rng, bias=bias)
        assert terms == ["maven"]

    def test_bias_length_checked(self, taxonomy, vocabulary):
        java = taxonomy.get("Computers/Programming/Java")
        with pytest.raises(ValueError, match="bias length"):
            vocabulary.sample_terms(java, 1, np.random.default_rng(0), bias=[1.0])

    def test_zero_bias_rejected(self, taxonomy, vocabulary):
        java = taxonomy.get("Computers/Programming/Java")
        n = len(vocabulary.words_of(java))
        with pytest.raises(ValueError, match="zeroes out"):
            vocabulary.sample_terms(
                java, 1, np.random.default_rng(0), bias=np.zeros(n)
            )

    def test_n_capped_at_vocab_size(self, taxonomy, vocabulary):
        java = taxonomy.get("Computers/Programming/Java")
        terms = vocabulary.sample_terms(java, 10_000, np.random.default_rng(0))
        assert len(terms) == len(vocabulary.words_of(java))


class TestTermProbability:
    def test_head_word_most_probable(self, taxonomy, vocabulary):
        java = taxonomy.get("Computers/Programming/Java")
        words = vocabulary.words_of(java)
        p_head = vocabulary.term_probability(words[0], java)
        p_tail = vocabulary.term_probability(words[-1], java)
        assert p_head > p_tail > 0

    def test_absent_word_zero(self, taxonomy, vocabulary):
        java = taxonomy.get("Computers/Programming/Java")
        assert vocabulary.term_probability("racket", java) == 0.0

    def test_distribution_sums_to_one(self, taxonomy, vocabulary):
        java = taxonomy.get("Computers/Programming/Java")
        total = sum(
            vocabulary.term_probability(w, java)
            for w in vocabulary.words_of(java)
        )
        assert total == pytest.approx(1.0)


class TestClassifier:
    def test_unambiguous_term(self, taxonomy, vocabulary):
        assert vocabulary.classify(["jvm"]) == taxonomy.get(
            "Computers/Programming/Java"
        )

    def test_context_disambiguates_sun(self, taxonomy, vocabulary):
        java = vocabulary.classify(["sun", "jvm"])
        astro = vocabulary.classify(["sun", "telescope"])
        assert java == taxonomy.get("Computers/Programming/Java")
        assert astro == taxonomy.get("Science/Astronomy")

    def test_unknown_terms_give_none(self, vocabulary):
        assert vocabulary.classify(["qqqq", "wwww"]) is None
        assert vocabulary.classify([]) is None

    def test_deterministic_tiebreak(self, vocabulary):
        assert vocabulary.classify(["sun"]) == vocabulary.classify(["sun"])
