"""Tests for repro.synth.web and repro.synth.users."""

import numpy as np
import pytest

from repro.synth.taxonomy import default_taxonomy
from repro.synth.users import UserModel, UserPopulation
from repro.synth.vocabulary import build_vocabulary
from repro.synth.web import SyntheticWeb, WebPage, build_web


@pytest.fixture(scope="module")
def taxonomy():
    return default_taxonomy()


@pytest.fixture(scope="module")
def vocabulary(taxonomy):
    return build_vocabulary(taxonomy)


@pytest.fixture(scope="module")
def web(vocabulary):
    return build_web(vocabulary, pages_per_leaf=8, seed=0)


class TestBuildWeb:
    def test_page_count(self, taxonomy, web):
        assert len(web) == 8 * len(taxonomy.leaves)

    def test_pages_per_leaf(self, taxonomy, web):
        for leaf in taxonomy.leaves:
            assert len(web.pages_of(leaf)) == 8

    def test_titles_topical(self, taxonomy, vocabulary, web):
        java = taxonomy.get("Computers/Programming/Java")
        words = set(vocabulary.words_of(java))
        for page in web.pages_of(java):
            assert page.title_terms
            assert set(page.title_terms) <= words

    def test_head_word_always_in_title(self, taxonomy, vocabulary, web):
        java = taxonomy.get("Computers/Programming/Java")
        head = vocabulary.words_of(java)[0]
        for page in web.pages_of(java):
            assert head in page.title_terms

    def test_lookup_roundtrip(self, web):
        page = web.pages[0]
        assert web.page(page.url) is page
        assert web.category_of(page.url) == page.category
        assert web.title_of(page.url) == page.title

    def test_unknown_url_raises(self, web):
        with pytest.raises(KeyError, match="unknown URL"):
            web.page("www.not-generated.com")

    def test_contains(self, web):
        assert web.pages[0].url in web
        assert "www.nope.com" not in web

    def test_duplicate_urls_rejected(self, taxonomy):
        page = WebPage("www.x.com", taxonomy.leaves[0], "t")
        with pytest.raises(ValueError, match="duplicate"):
            SyntheticWeb([page, page])

    def test_deterministic(self, vocabulary):
        a = build_web(vocabulary, pages_per_leaf=4, seed=3)
        b = build_web(vocabulary, pages_per_leaf=4, seed=3)
        assert [p.title for p in a.pages] == [p.title for p in b.pages]


class TestSamplePage:
    def test_returns_leaf_page(self, taxonomy, web):
        java = taxonomy.get("Computers/Programming/Java")
        page = web.sample_page(java, np.random.default_rng(0))
        assert page.category == java

    def test_bias_concentrates(self, taxonomy, web):
        java = taxonomy.get("Computers/Programming/Java")
        pages = web.pages_of(java)
        bias = np.zeros(len(pages))
        bias[3] = 1.0
        page = web.sample_page(java, np.random.default_rng(0), bias=bias)
        assert page is pages[3]

    def test_bias_length_checked(self, taxonomy, web):
        java = taxonomy.get("Computers/Programming/Java")
        with pytest.raises(ValueError, match="bias length"):
            web.sample_page(java, np.random.default_rng(0), bias=np.ones(2))

    def test_popularity_skew(self, taxonomy, web):
        # Rank-1 page should be clicked far more often than rank-8.
        java = taxonomy.get("Computers/Programming/Java")
        rng = np.random.default_rng(0)
        counts = {}
        for _ in range(600):
            url = web.sample_page(java, rng).url
            counts[url] = counts.get(url, 0) + 1
        pages = web.pages_of(java)
        assert counts.get(pages[0].url, 0) > counts.get(pages[-1].url, 0)


class TestUserModel:
    def test_interests_must_sum_to_one(self, taxonomy):
        leaf = taxonomy.leaves[0]
        with pytest.raises(ValueError, match="sum to 1"):
            UserModel("u", {leaf: 0.5})

    def test_no_interests_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            UserModel("u", {})

    def test_interest_leaves_sorted_by_weight(self, taxonomy):
        a, b = taxonomy.leaves[0], taxonomy.leaves[1]
        user = UserModel("u", {a: 0.3, b: 0.7})
        assert user.interest_leaves == [b, a]

    def test_topic_weights_normalized(self, taxonomy):
        a, b = taxonomy.leaves[0], taxonomy.leaves[1]
        user = UserModel(
            "u", {a: 0.5, b: 0.5}, drift={a: (2.0, 5.0), b: (5.0, 2.0)}
        )
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            weights = user.topic_weights_at(t)
            assert sum(weights.values()) == pytest.approx(1.0)

    def test_drift_shifts_topic_over_time(self, taxonomy):
        a, b = taxonomy.leaves[0], taxonomy.leaves[1]
        user = UserModel(
            "u", {a: 0.5, b: 0.5}, drift={a: (2.0, 8.0), b: (8.0, 2.0)}
        )
        early = user.topic_weights_at(0.1)
        late = user.topic_weights_at(0.9)
        assert early[a] > early[b]
        assert late[b] > late[a]

    def test_sample_intent_in_interests(self, taxonomy):
        a, b = taxonomy.leaves[0], taxonomy.leaves[1]
        user = UserModel("u", {a: 0.5, b: 0.5})
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert user.sample_intent(0.5, rng) in (a, b)

    def test_t_norm_validated(self, taxonomy):
        user = UserModel("u", {taxonomy.leaves[0]: 1.0})
        with pytest.raises(ValueError):
            user.topic_weights_at(1.5)


class TestUserPopulation:
    def test_generate_shape(self, vocabulary, web):
        population = UserPopulation.generate(10, vocabulary, web, seed=0)
        assert len(population) == 10
        assert population.user_ids[0] == "user0000"

    def test_deterministic(self, vocabulary, web):
        a = UserPopulation.generate(5, vocabulary, web, seed=1)
        b = UserPopulation.generate(5, vocabulary, web, seed=1)
        for ua, ub in zip(a, b):
            assert ua.interests == ub.interests

    def test_biases_match_world_dimensions(self, vocabulary, web):
        population = UserPopulation.generate(5, vocabulary, web, seed=2)
        for user in population:
            for leaf, bias in user.word_bias.items():
                assert len(bias) == len(vocabulary.words_of(leaf))
            for leaf, bias in user.url_bias.items():
                assert len(bias) == len(web.pages_of(leaf))

    def test_get_and_contains(self, vocabulary, web):
        population = UserPopulation.generate(3, vocabulary, web, seed=0)
        assert "user0001" in population
        assert population.get("user0001").user_id == "user0001"
        with pytest.raises(KeyError):
            population.get("ghost")

    def test_invalid_args(self, vocabulary, web):
        with pytest.raises(ValueError):
            UserPopulation.generate(0, vocabulary, web)
        with pytest.raises(ValueError):
            UserPopulation.generate(
                2, vocabulary, web, interests_per_user=(3, 2)
            )
