"""Tests for the hub-URL click noise of the generator."""

import pytest

from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def world():
    return make_world(seed=0)


class TestHubClicks:
    def test_disabled_by_default(self, world):
        synthetic = generate_log(world, GeneratorConfig(n_users=10, seed=1))
        assert not any(
            r.has_click and r.clicked_url.startswith("www.hub-")
            for r in synthetic.log
        )

    def test_hub_urls_generated_at_configured_rate(self, world):
        synthetic = generate_log(
            world,
            GeneratorConfig(
                n_users=20, hub_click_probability=0.3, n_hub_urls=4, seed=2
            ),
        )
        clicks = [r for r in synthetic.log if r.has_click]
        hub_clicks = [
            r for r in clicks if r.clicked_url.startswith("www.hub-")
        ]
        assert clicks
        rate = len(hub_clicks) / len(clicks)
        assert 0.2 < rate < 0.4  # near the configured 0.3

    def test_hub_url_universe_bounded(self, world):
        synthetic = generate_log(
            world,
            GeneratorConfig(
                n_users=20, hub_click_probability=0.3, n_hub_urls=4, seed=2
            ),
        )
        hubs = {
            r.clicked_url
            for r in synthetic.log
            if r.has_click and r.clicked_url.startswith("www.hub-")
        }
        assert len(hubs) <= 4

    def test_hubs_outside_synthetic_web(self, world):
        synthetic = generate_log(
            world,
            GeneratorConfig(n_users=10, hub_click_probability=0.3, seed=3),
        )
        for record in synthetic.log:
            if record.has_click and record.clicked_url.startswith("www.hub-"):
                assert record.clicked_url not in world.web

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(hub_click_probability=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(n_hub_urls=0)

    def test_hubs_connect_cross_topic_queries_in_click_graph(self, world):
        from repro.graphs.click_graph import build_click_graph

        synthetic = generate_log(
            world,
            GeneratorConfig(
                n_users=30, hub_click_probability=0.25, seed=4
            ),
        )
        graph = build_click_graph(synthetic.log, weighted=False)
        # Some hub must connect queries of different ground-truth intents.
        from repro.utils.text import normalize_query

        found_cross_topic_hub = False
        for record in synthetic.log:
            if not (record.has_click and record.clicked_url.startswith("www.hub-")):
                continue
            neighbors = graph.neighbors(record.query)
            intent = synthetic.query_category.get(
                normalize_query(record.query)
            )
            for neighbor in neighbors:
                other = synthetic.query_category.get(neighbor)
                if intent and other and intent.top != other.top:
                    found_cross_topic_hub = True
                    break
            if found_cross_topic_hub:
                break
        assert found_cross_topic_hub
