"""Targeted cache invalidation: only entries touching a delta are evicted.

ISSUE 2 satellite b: ``CompactCache`` tracks the query set behind each
entry, ``invalidate(queries)`` evicts exactly the entries whose cached
neighbourhood intersects the touched set, ``CacheStats.invalidations``
counts them, and untouched entries *survive* an epoch swap and keep
serving.
"""

import pytest

from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.graphs.compact import CompactConfig
from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog
from repro.stream import IngestConfig, streaming_pqsda
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def synthetic_log():
    world = make_world(seed=0)
    return generate_log(
        world,
        GeneratorConfig(n_users=25, mean_sessions_per_user=8, seed=11),
    ).log


def _build(log, cache_size=64):
    return PQSDA.build(
        log,
        config=PQSDAConfig(
            compact=CompactConfig(size=60),
            diversify=DiversifyConfig(k=8, candidate_pool=15),
            personalize=False,
            cache_size=cache_size,
        ),
    )


def _probe_queries(log, n=8):
    seen: list[str] = []
    for record in log:
        if record.has_click and record.query not in seen:
            seen.append(record.query)
        if len(seen) >= n:
            break
    return seen


class TestInvalidateAPI:
    def test_entries_carry_their_query_set(self, synthetic_log):
        suggester = _build(synthetic_log)
        probe = _probe_queries(synthetic_log, 1)[0]
        suggester.suggest(probe, k=8)
        cache = suggester.serving_cache
        [entry] = cache._entries.values()
        assert entry.query_set == frozenset(entry.queries)
        assert probe.lower() in {q for q in entry.query_set} or entry.queries

    def test_invalidate_evicts_only_intersecting_entries(self, synthetic_log):
        suggester = _build(synthetic_log)
        cache = suggester.serving_cache
        probes = _probe_queries(synthetic_log, 6)
        for probe in probes:
            suggester.suggest(probe, k=8)
        entries = dict(cache._entries)
        assert len(entries) == len(probes)

        # Pick one entry and invalidate through one of its cached queries,
        # chosen to hit as few other entries as possible.
        target_key, target = next(iter(entries.items()))
        victim_query = min(
            target.query_set,
            key=lambda q: sum(
                q in e.query_set for e in entries.values()
            ),
        )
        expected_stale = {
            key
            for key, entry in entries.items()
            if victim_query in entry.query_set
        }
        evicted = cache.invalidate([victim_query])
        assert evicted == len(expected_stale)
        remaining = set(cache._entries)
        assert remaining == set(entries) - expected_stale
        assert cache.stats.invalidations == evicted

    def test_invalidate_with_foreign_queries_is_noop(self, synthetic_log):
        suggester = _build(synthetic_log)
        probes = _probe_queries(synthetic_log, 4)
        for probe in probes:
            suggester.suggest(probe, k=8)
        cache = suggester.serving_cache
        before = cache.stats.size
        assert cache.invalidate(["query-that-never-existed-xyz"]) == 0
        assert cache.invalidate([]) == 0
        assert cache.stats.size == before
        assert cache.stats.invalidations == 0


class TestEpochSwapSurvival:
    def test_untouched_entries_survive_epoch_swap(self, synthetic_log):
        """An epoch publish evicts only entries touching the delta."""
        records = sorted(
            synthetic_log.records, key=lambda r: (r.timestamp, r.record_id)
        )
        split = int(len(records) * 0.8)
        bootstrap = QueryLog(records[:split])
        suggester, ingestor, manager = streaming_pqsda(
            bootstrap,
            config=PQSDAConfig(
                compact=CompactConfig(size=25),
                diversify=DiversifyConfig(k=8, candidate_pool=15),
                personalize=False,
            ),
            ingest=IngestConfig(batch_size=8, clean=False),
        )
        cache = suggester.serving_cache
        probes = _probe_queries(bootstrap, 8)
        for probe in probes:
            suggester.suggest(probe, k=8)
        entries_before = dict(cache._entries)
        assert entries_before

        # Stream one record whose query is brand new: the delta touches
        # only that query, so no cached neighbourhood intersects it.
        low, high = bootstrap.time_range
        novel = QueryRecord(
            user_id="fresh-user",
            query="zzzz-novel-query-term",
            timestamp=high + 10_000.0,
            clicked_url="zzzz.example.com",
        )
        ingestor.ingest([novel])
        assert manager.current().epoch_id == 1
        assert set(cache._entries) == set(entries_before)
        assert cache.stats.invalidations == 0

        # Streaming the *tail* of the real log touches real queries: an
        # entry must be evicted iff its neighbourhood intersected any
        # published delta, and must survive otherwise.
        touched_union: set[str] = set()
        manager.subscribe(
            lambda epoch: touched_union.update(epoch.touched_queries)
        )
        state_before = dict(cache._entries)
        report = ingestor.ingest(iter(records[split:]))
        assert report.epochs_published >= 1
        assert set(cache._entries) <= set(state_before)  # no new builds
        for key, entry in state_before.items():
            if entry.query_set.isdisjoint(touched_union):
                assert key in cache._entries, "untouched entry was evicted"
            else:
                assert key not in cache._entries, "stale entry survived"

    def test_swapped_cache_serves_fresh_graph(self, synthetic_log):
        """Post-swap suggestions reflect the new epoch, not stale entries."""
        records = sorted(
            synthetic_log.records, key=lambda r: (r.timestamp, r.record_id)
        )
        split = int(len(records) * 0.7)
        suggester, ingestor, manager = streaming_pqsda(
            QueryLog(records[:split]),
            config=PQSDAConfig(
                compact=CompactConfig(size=60),
                diversify=DiversifyConfig(k=8, candidate_pool=15),
                personalize=False,
            ),
            ingest=IngestConfig(batch_size=64, clean=False),
        )
        probes = _probe_queries(synthetic_log, 5)
        for probe in probes:
            suggester.suggest(probe, k=8)
        ingestor.ingest(iter(records[split:]))

        reference = _build(QueryLog(records))
        for probe in probes:
            assert suggester.suggest(probe, k=8) == reference.suggest(
                probe, k=8
            ), probe
