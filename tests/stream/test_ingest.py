"""LogIngestor: micro-batching, epoch cadence, cleaning gate, sources."""

import threading
import time

import pytest

from repro.logs.aol import write_aol
from repro.logs.cleaning import CleaningRules
from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog
from repro.stream import (
    Epoch,
    EpochManager,
    IngestConfig,
    LogIngestor,
    StreamState,
    replay,
    tail_aol,
)

_T0 = 1_355_000_000.0


def _record(i, user="u1", query=None, url=None, gap=60.0):
    return QueryRecord(
        user_id=user,
        query=query or f"query {i}",
        timestamp=_T0 + i * gap,
        clicked_url=url,
    )


def _fresh_ingestor(config=None, bootstrap=()):
    state = StreamState()
    state.apply(list(bootstrap) or [_record(0, query="bootstrap query")])
    manager = EpochManager(Epoch.from_snapshot(0, state.build_snapshot()))
    return LogIngestor(state, manager, config), state, manager


class TestConfigValidation:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            IngestConfig(batch_size=0)

    def test_rejects_bad_epoch_every(self):
        with pytest.raises(ValueError, match="epoch_every"):
            IngestConfig(epoch_every=0)


class TestBatchingAndEpochs:
    def test_batch_size_controls_flushes(self):
        ingestor, state, manager = _fresh_ingestor(
            IngestConfig(batch_size=10, clean=False)
        )
        report = ingestor.ingest(_record(i) for i in range(1, 36))
        assert report.records_seen == 35
        assert report.records_ingested == 35
        assert report.batches == 4  # 10+10+10 full + 5 remainder
        assert report.epochs_published == 4
        assert state.n_pending == 0
        assert manager.current().epoch_id == 4

    def test_epoch_every_amortizes_publishes(self):
        ingestor, _, manager = _fresh_ingestor(
            IngestConfig(batch_size=10, epoch_every=3, clean=False)
        )
        report = ingestor.ingest(_record(i) for i in range(1, 71))
        assert report.batches == 7
        # 7 batches: epochs after batch 3 and 6, plus the remainder flush.
        assert report.epochs_published == 3
        assert manager.current().epoch_id == 3

    def test_remainder_can_be_held_back(self):
        ingestor, state, manager = _fresh_ingestor(
            IngestConfig(batch_size=100, clean=False)
        )
        report = ingestor.ingest(
            (_record(i) for i in range(1, 8)), publish_remainder=False
        )
        assert report.batches == 0
        assert report.epochs_published == 0
        assert state.n_pending == 0  # held in the ingestor's buffer
        assert manager.current().epoch_id == 0
        # The next ingest call picks the buffered records up.
        report = ingestor.ingest([_record(100)])
        assert report.epochs_published == 1
        assert manager.current().log is not None

    def test_report_throughput(self):
        ingestor, _, _ = _fresh_ingestor(IngestConfig(batch_size=5, clean=False))
        report = ingestor.ingest(_record(i) for i in range(1, 21))
        assert report.elapsed_seconds > 0
        assert report.records_per_second > 0


class TestCleaningGate:
    def test_term_bounds_drop_records(self):
        rules = CleaningRules(min_query_terms=1, max_query_terms=3)
        ingestor, _, _ = _fresh_ingestor(
            IngestConfig(batch_size=4, rules=rules)
        )
        records = [
            _record(1, query="fine query"),
            _record(2, query="!!!"),  # no topical terms after normalization
            _record(3, query="a b c d e f g"),  # too long
            _record(4, query="also fine"),
        ]
        report = ingestor.ingest(iter(records))
        assert report.records_seen == 4
        assert report.records_ingested == 2
        assert report.dropped_terms == 2

    def test_running_robot_filter(self):
        rules = CleaningRules(max_user_queries=5)
        ingestor, _, _ = _fresh_ingestor(
            IngestConfig(batch_size=100, rules=rules)
        )
        records = [_record(i, user="robot") for i in range(1, 11)]
        records += [_record(i, user="human", gap=61.0) for i in range(1, 4)]
        report = ingestor.ingest(iter(records))
        assert report.dropped_robot == 5  # robot rows 6..10
        assert report.records_ingested == 8

    def test_drop_urls_declick(self):
        rules = CleaningRules(drop_urls=frozenset({"spam.example.com"}))
        ingestor, state, _ = _fresh_ingestor(
            IngestConfig(batch_size=2, rules=rules)
        )
        records = [
            _record(1, query="query one", url="spam.example.com"),
            _record(2, query="query two", url="good.example.com"),
        ]
        report = ingestor.ingest(iter(records))
        assert report.declicked_urls == 1
        assert report.records_ingested == 2

    def test_gate_normalizes_queries(self):
        ingestor, state, manager = _fresh_ingestor(IngestConfig(batch_size=1))
        ingestor.ingest([_record(1, query="  MiXeD CaSe  ")])
        assert "mixed case" in manager.current().log.unique_queries


class TestReplaySource:
    def test_unpaced_replay_passes_through(self):
        records = [_record(i) for i in range(5)]
        assert list(replay(records)) == records

    def test_paced_replay_sleeps_by_compressed_gaps(self):
        records = [_record(0), _record(1, gap=10.0), _record(2, gap=10.0)]
        started = time.perf_counter()
        out = list(replay(records, speedup=100.0))
        elapsed = time.perf_counter() - started
        assert out == records
        # Two 10s gaps at 100x => ~0.2s of sleeping.
        assert elapsed >= 0.15

    def test_negative_speedup_rejected(self):
        with pytest.raises(ValueError, match="speedup"):
            list(replay([], speedup=-1.0))


class TestTailSource:
    def test_tail_reads_appended_rows(self, tmp_path):
        path = tmp_path / "live.tsv"
        first = [_record(1, query="first query", url="a.example.com")]
        write_aol(QueryLog(first), path)

        seen: list[str] = []

        def consume() -> None:
            for record in tail_aol(path, poll_seconds=0.05, idle_timeout=2.0):
                seen.append(record.query)

        consumer = threading.Thread(target=consume)
        consumer.start()
        time.sleep(0.2)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("u9\tappended query\t2012-12-12 12:00:00\t\t\n")
        consumer.join(timeout=30)
        assert not consumer.is_alive()
        assert seen == ["first query", "appended query"]

    def test_tail_skips_header_and_malformed(self, tmp_path):
        path = tmp_path / "junk.tsv"
        path.write_text(
            "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n"
            "not a valid row\n"
            "u1\tgood query\t2012-12-12 12:00:00\t\t\n",
            encoding="utf-8",
        )
        records = list(tail_aol(path, poll_seconds=0.05, idle_timeout=0.1))
        assert [r.query for r in records] == ["good query"]

    def test_tail_rejects_bad_poll(self, tmp_path):
        path = tmp_path / "x.tsv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError, match="poll_seconds"):
            list(tail_aol(path, poll_seconds=0.0))


class TestProfileFeedback:
    @pytest.fixture(scope="class")
    def profile_store(self):
        from repro.logs.sessionizer import sessionize
        from repro.personalize.profiles import (
            ArrayProfileStore,
            UserProfileStore,
        )
        from repro.personalize.upm import UPM, UPMConfig
        from repro.topicmodels.corpus import build_corpus
        from tests.personalize.test_upm import two_topic_log

        log = two_topic_log()
        corpus = build_corpus(log, sessionize(log))
        model = UPM(UPMConfig(n_topics=2, iterations=10, seed=0)).fit(corpus)
        return ArrayProfileStore(UserProfileStore(model).to_arrays())

    def test_clicks_fold_into_epoch_profiles(self, profile_store):
        state = StreamState()
        state.apply([_record(0, query="bootstrap query")])
        manager = EpochManager(Epoch.from_snapshot(0, state.build_snapshot()))
        ingestor = LogIngestor(
            state,
            manager,
            IngestConfig(batch_size=2, epoch_every=1, clean=False),
            profiles=profile_store,
        )
        user = profile_store.user_ids[0]
        clicks = [
            _record(i, user=user, query="java jvm", url="http://j")
            for i in range(1, 5)
        ]
        ingestor.ingest(iter(clicks))
        epoch = manager.current()
        assert epoch.profiles is not None
        # Two full batches -> two publishes, each folding its clicks.
        assert epoch.profiles.generation == 2
        assert ingestor.profiles is epoch.profiles
        # The original store is untouched (copy-on-write fold).
        assert profile_store.generation == 0

    def test_clickless_epoch_carries_no_profiles(self, profile_store):
        state = StreamState()
        state.apply([_record(0, query="bootstrap query")])
        manager = EpochManager(Epoch.from_snapshot(0, state.build_snapshot()))
        ingestor = LogIngestor(
            state,
            manager,
            IngestConfig(batch_size=2, epoch_every=1, clean=False),
            profiles=profile_store,
        )
        user = profile_store.user_ids[0]
        ingestor.ingest(
            iter([_record(i, user=user, query="java jvm") for i in range(1, 4)])
        )
        assert manager.current().profiles is None
        assert ingestor.profiles is profile_store

    def test_streaming_pqsda_rebinds_folded_profiles(self):
        from repro.core import PQSDAConfig
        from repro.personalize.profiles import ArrayProfileStore
        from repro.personalize.upm import UPMConfig
        from repro.stream import streaming_pqsda
        from tests.personalize.test_upm import two_topic_log

        log = two_topic_log()
        config = PQSDAConfig(
            upm=UPMConfig(n_topics=2, iterations=10, seed=0),
            personalize=True,
        )
        suggester, ingestor, manager = streaming_pqsda(
            log,
            config=config,
            ingest=IngestConfig(batch_size=2, epoch_every=1, clean=False),
            stream_profiles=True,
        )
        assert isinstance(suggester.profiles, ArrayProfileStore)
        user = suggester.profiles.user_ids[0]
        last = max(r.timestamp for r in log.records)
        clicks = [
            QueryRecord(
                user_id=user,
                query="java jvm",
                timestamp=last + i * 60.0,
                clicked_url="http://j",
            )
            for i in range(1, 5)
        ]
        ingestor.ingest(iter(clicks))
        # The epoch subscription rebound the suggester onto the fold
        # (one generation per click-carrying publish: two full batches).
        assert suggester.profiles is ingestor.profiles
        assert suggester.profiles.generation == 2
