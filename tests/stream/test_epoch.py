"""Epoch lifecycle: atomic publish, reader pinning, retirement, concurrency.

The acceptance property of ISSUE 2: an epoch swap never blocks concurrent
``suggest_batch`` readers, each request is served from exactly one epoch,
and superseded epochs are retired only after their last reader unpins.
"""

import threading

import pytest

from repro.baselines.base import SuggestRequest
from repro.core import PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.graphs.compact import CompactConfig
from repro.logs.storage import QueryLog
from repro.stream import Epoch, EpochManager, IngestConfig, StreamState, streaming_pqsda
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def synthetic_log():
    world = make_world(seed=0)
    return generate_log(
        world,
        GeneratorConfig(n_users=25, mean_sessions_per_user=8, seed=11),
    ).log


def _epoch_from(records, epoch_id=0):
    state = StreamState()
    state.apply(list(records))
    return Epoch.from_snapshot(epoch_id, state.build_snapshot()), state


class TestEpochManager:
    def test_publish_swaps_current_and_retires(self, synthetic_log):
        records = synthetic_log.records
        epoch0, state = _epoch_from(records[:50])
        manager = EpochManager(epoch0)
        assert manager.current() is epoch0
        assert manager.stats.published == 1

        state.apply(records[50:80])
        epoch1 = Epoch.from_snapshot(1, state.build_snapshot())
        manager.publish(epoch1)
        assert manager.current() is epoch1
        stats = manager.stats
        assert stats.current_epoch == 1
        assert stats.published == 2
        assert stats.retired == 1  # epoch 0 had no readers
        assert stats.live == 1

    def test_pinned_epoch_outlives_publishes(self, synthetic_log):
        records = synthetic_log.records
        epoch0, state = _epoch_from(records[:50])
        manager = EpochManager(epoch0)
        with manager.pin() as pinned:
            assert pinned is epoch0
            state.apply(records[50:80])
            manager.publish(Epoch.from_snapshot(1, state.build_snapshot()))
            state.apply(records[80:110])
            manager.publish(Epoch.from_snapshot(2, state.build_snapshot()))
            stats = manager.stats
            assert stats.current_epoch == 2
            assert stats.live == 2  # epoch 0 pinned + epoch 2 current
            assert stats.retired == 1  # epoch 1: superseded, never pinned
            assert stats.pinned_readers == 1
            # The pinned snapshot still answers from its own generation.
            assert pinned.log is epoch0.log
        stats = manager.stats
        assert stats.live == 1
        assert stats.retired == 2
        assert stats.pinned_readers == 0

    def test_nested_pins_refcount(self, synthetic_log):
        records = synthetic_log.records
        epoch0, state = _epoch_from(records[:50])
        manager = EpochManager(epoch0)
        with manager.pin():
            with manager.pin():
                state.apply(records[50:70])
                manager.publish(
                    Epoch.from_snapshot(1, state.build_snapshot())
                )
                assert manager.stats.pinned_readers == 2
                assert manager.stats.live == 2
            assert manager.stats.live == 2  # one pin still holds epoch 0
        assert manager.stats.live == 1

    def test_non_monotonic_publish_rejected(self, synthetic_log):
        epoch0, state = _epoch_from(synthetic_log.records[:50])
        manager = EpochManager(epoch0)
        state.apply(synthetic_log.records[50:60])
        stale = Epoch.from_snapshot(0, state.build_snapshot())
        with pytest.raises(ValueError, match="must increase"):
            manager.publish(stale)

    def test_subscribers_see_every_publish(self, synthetic_log):
        records = synthetic_log.records
        epoch0, state = _epoch_from(records[:50])
        manager = EpochManager(epoch0)
        seen = []
        manager.subscribe(lambda epoch: seen.append(epoch.epoch_id))
        for i, lo in enumerate(range(50, 110, 20), start=1):
            state.apply(records[lo : lo + 20])
            manager.publish(Epoch.from_snapshot(i, state.build_snapshot()))
        assert seen == [1, 2, 3]


class TestConcurrentServing:
    def test_epoch_swaps_never_block_batch_readers(self, synthetic_log):
        """Readers hammer suggest_batch while a writer publishes epochs.

        Every reader must complete with answers drawn from one consistent
        epoch each — no exceptions, no empty results for known queries,
        no deadlock (bounded join).
        """
        records = sorted(
            synthetic_log.records, key=lambda r: (r.timestamp, r.record_id)
        )
        split = int(len(records) * 0.6)
        suggester, ingestor, manager = streaming_pqsda(
            QueryLog(records[:split]),
            config=PQSDAConfig(
                compact=CompactConfig(size=40),
                diversify=DiversifyConfig(k=8, candidate_pool=15),
                personalize=False,
            ),
            ingest=IngestConfig(batch_size=16, clean=False),
        )
        probes: list[str] = []
        for record in records[:split]:
            if record.has_click and record.query not in probes:
                probes.append(record.query)
            if len(probes) >= 6:
                break
        requests = [SuggestRequest(query=q, k=8) for q in probes]

        errors: list[BaseException] = []
        empty = threading.Event()
        stop_readers = threading.Event()

        def reader() -> None:
            try:
                while not stop_readers.is_set():
                    batch = suggester.suggest_batch(requests, n_workers=2)
                    if any(not suggestions for suggestions in batch):
                        empty.set()
            except BaseException as exc:  # noqa: BLE001 - test harness
                errors.append(exc)

        def writer() -> None:
            try:
                tail = records[split:]
                for lo in range(0, len(tail), 16):
                    ingestor.ingest(iter(tail[lo : lo + 16]))
            except BaseException as exc:  # noqa: BLE001 - test harness
                errors.append(exc)
            finally:
                stop_readers.set()

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writer_thread = threading.Thread(target=writer)
        for thread in readers:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=120)
        assert not writer_thread.is_alive(), "writer deadlocked"
        stop_readers.set()
        for thread in readers:
            thread.join(timeout=120)
            assert not thread.is_alive(), "reader deadlocked"

        assert not errors, errors
        # Probes were in the bootstrap log and queries only accumulate, so
        # every batch answer must have been non-empty in every epoch.
        assert not empty.is_set(), "a known query got no suggestions"
        assert manager.current().epoch_id > 0
        assert manager.stats.pinned_readers == 0
