"""Sharded streaming: per-shard delta folds, minimal epoch update sets.

The contract: a sharded :class:`StreamState` derives per-shard slices at
every snapshot that are bit-identical to slicing a batch rebuild over the
same record prefix, and — for deltas that add no queries — reports the
*minimal* update set, reusing the previous epoch's slice objects for
every shard whose bytes did not change.  The scale-out pool consumes that
set as independent per-shard segment swaps.
"""

import multiprocessing

import numpy as np
import pytest

from repro.graphs.multibipartite import BIPARTITE_KINDS
from repro.graphs.shard import ShardPlan, build_shard_slices, stitch_slices
from repro.logs.storage import QueryLog
from repro.obs.registry import MetricsRegistry
from repro.stream.delta import StreamState
from repro.stream.epoch import Epoch, EpochManager
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world
from repro.utils.text import normalize_query

N_SHARDS = 4


@pytest.fixture(scope="module")
def records():
    synthetic = generate_log(
        make_world(seed=0),
        GeneratorConfig(n_users=40, mean_sessions_per_user=6, seed=7),
    )
    return sorted(
        synthetic.log.records, key=lambda r: (r.timestamp, r.record_id)
    )


@pytest.fixture(scope="module")
def split(records):
    cut = len(records) * 2 // 3
    return records[:cut], records[cut:]


def _bootstrapped(split, weighted=False, plan=None):
    state = StreamState(
        weighted=weighted, shard_plan=plan or ShardPlan.hashed(N_SHARDS)
    )
    state.apply(split[0])
    return state, state.build_snapshot()


def _same_shard_records(snapshot, tail, plan, shard_id, limit=25):
    """Tail records whose (known) query homes on *shard_id*."""
    known = set(snapshot.matrices.queries)
    picked = []
    for record in tail:
        query = normalize_query(record.query)
        if query in known and plan.shard_of(query) == shard_id:
            picked.append(record)
            if len(picked) >= limit:
                break
    return picked


def _assert_csr_equal(left, right):
    assert left.shape == right.shape
    assert np.array_equal(left.data, right.data)
    assert np.array_equal(
        np.asarray(left.indices, dtype=np.int64),
        np.asarray(right.indices, dtype=np.int64),
    )


class TestDeltaBookkeeping:
    def test_touched_shards_label_the_touched_queries(self, split):
        plan = ShardPlan.hashed(N_SHARDS)
        state, _ = _bootstrapped(split, plan=plan)
        delta = state.apply(split[1][:30])
        assert delta.touched_shards == frozenset(
            plan.shard_of(query) for query in delta.touched_queries
        )

    def test_unsharded_state_reports_no_shards(self, split):
        state = StreamState(weighted=False)
        delta = state.apply(split[0][:30])
        assert delta.touched_shards == frozenset()
        assert state.build_snapshot().shard_updates is None


class TestSnapshotUpdates:
    def test_bootstrap_snapshot_forces_full_publish(self, split):
        _, snapshot = _bootstrapped(split)
        assert snapshot.shard_updates is None
        assert snapshot.shard_slices is not None
        assert len(snapshot.shard_slices) == N_SHARDS

    def test_single_shard_delta_yields_single_shard_update(self, split):
        plan = ShardPlan.hashed(N_SHARDS)
        state, s0 = _bootstrapped(split, plan=plan)
        target = next(
            shard_id
            for shard_id in range(N_SHARDS)
            if _same_shard_records(s0, split[1], plan, shard_id)
        )
        batch = _same_shard_records(s0, split[1], plan, target)
        delta = state.apply(batch)
        assert delta.touched_shards == frozenset([target])
        assert not delta.new_queries
        s1 = state.build_snapshot()
        assert set(s1.shard_updates) == {target}
        for shard_id in range(N_SHARDS):
            if shard_id == target:
                assert s1.shard_slices[shard_id] is not s0.shard_slices[shard_id]
            else:
                # Untouched shards are the previous epoch's very objects.
                assert s1.shard_slices[shard_id] is s0.shard_slices[shard_id]

    def test_new_queries_force_a_full_publish(self, split):
        state, s0 = _bootstrapped(split)
        known = set(s0.matrices.queries)
        novel = [
            r for r in split[1] if normalize_query(r.query) not in known
        ][:10]
        assert novel, "synthetic tail must introduce new queries"
        delta = state.apply(novel)
        assert delta.new_queries
        assert state.build_snapshot().shard_updates is None

    def test_cfiqf_weighting_updates_every_shard(self, split):
        # The epoch-level |Q| correction rescales every facet weight, so
        # weighted states legitimately republish all shards.
        plan = ShardPlan.hashed(N_SHARDS)
        state, s0 = _bootstrapped(split, weighted=True, plan=plan)
        target = next(
            shard_id
            for shard_id in range(N_SHARDS)
            if _same_shard_records(s0, split[1], plan, shard_id)
        )
        state.apply(_same_shard_records(s0, split[1], plan, target))
        s1 = state.build_snapshot()
        assert set(s1.shard_updates) == set(range(N_SHARDS))


class TestPerShardBitIdentity:
    def test_streamed_slices_match_batch_built_slices(self, split):
        plan = ShardPlan.hashed(N_SHARDS)
        state, s0 = _bootstrapped(split, plan=plan)
        known = set(s0.matrices.queries)
        safe = [r for r in split[1] if normalize_query(r.query) in known][:40]
        state.apply(safe)
        streamed = state.build_snapshot()
        batch = build_shard_slices(
            streamed.matrices, plan, streamed.multibipartite
        )
        for shard_id in range(N_SHARDS):
            ours, theirs = streamed.shard_slices[shard_id], batch[shard_id]
            assert ours.queries == theirs.queries
            assert np.array_equal(ours.rows, theirs.rows)
            assert ours.closed == theirs.closed
            for kind in BIPARTITE_KINDS:
                assert ours.facet_names[kind] == theirs.facet_names[kind]
                _assert_csr_equal(ours.incidence[kind], theirs.incidence[kind])

    def test_stitched_slices_reassemble_the_snapshot_matrices(self, split):
        state, s0 = _bootstrapped(split)
        known = set(s0.matrices.queries)
        state.apply(
            [r for r in split[1] if normalize_query(r.query) in known][:40]
        )
        snapshot = state.build_snapshot()
        stitched = stitch_slices(snapshot.shard_slices)
        assert stitched.queries == snapshot.matrices.queries
        for kind in BIPARTITE_KINDS:
            _assert_csr_equal(
                stitched.incidence[kind], snapshot.matrices.incidence[kind]
            )


class TestEpochPlumbing:
    def test_epoch_carries_the_shard_fields(self, split):
        plan = ShardPlan.hashed(N_SHARDS)
        state, s0 = _bootstrapped(split, plan=plan)
        epoch0 = Epoch.from_snapshot(0, s0)
        assert epoch0.shard_plan == plan
        assert epoch0.shard_updates is None
        known = set(s0.matrices.queries)
        state.apply(
            [r for r in split[1] if normalize_query(r.query) in known][:20]
        )
        epoch1 = Epoch.from_snapshot(1, state.build_snapshot())
        assert epoch1.shard_plan == plan
        assert epoch1.shard_updates is not None

    def test_manager_counts_per_shard_publishes(self, split):
        state, s0 = _bootstrapped(split)
        registry = MetricsRegistry()
        manager = EpochManager(Epoch.from_snapshot(0, s0), registry=registry)
        known = set(s0.matrices.queries)
        state.apply(
            [r for r in split[1] if normalize_query(r.query) in known][:20]
        )
        epoch1 = Epoch.from_snapshot(1, state.build_snapshot())
        manager.publish(epoch1)
        snapshot = {
            (m["name"],): m.get("value")
            for m in registry.snapshot()["metrics"]
            if not m.get("labels")
        }
        assert snapshot[("stream.epochs.shard_publishes",)] == 1
        assert snapshot[("stream.epochs.shard_updates",)] == len(
            epoch1.shard_updates
        )


class TestEndToEndPoolSwap:
    def test_streamed_epoch_swaps_only_touched_shards(self, split):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        from repro.baselines.base import SuggestRequest
        from repro.core.config import PQSDAConfig
        from repro.serve.pool import SuggestWorkerPool
        from repro.stream import streaming_pqsda

        plan = ShardPlan.hashed(N_SHARDS)
        config = PQSDAConfig(weighted=False, personalize=False)
        suggester, ingestor, manager = streaming_pqsda(
            QueryLog(tuple(split[0])), config=config, shard_plan=plan
        )
        epoch0 = manager.current()
        target = next(
            shard_id
            for shard_id in range(N_SHARDS)
            if _same_shard_records(epoch0, split[1], plan, shard_id)
        )
        batch = _same_shard_records(epoch0, split[1], plan, target)
        pool = SuggestWorkerPool(
            epoch0.expander,
            config,
            multibipartite=epoch0.multibipartite,
            n_workers=2,
            start_method="fork",
            n_shards=N_SHARDS,
            shard_plan=plan,
            prefix="t-shstream",
        )
        try:
            pool.attach_epochs(manager)
            before_ids = dict(pool.shard_epoch_ids)
            ingestor.ingest(iter(batch))
            epoch = manager.current()
            assert set(epoch.shard_updates) == {target}
            after_ids = dict(pool.shard_epoch_ids)
            assert after_ids[target] == epoch.epoch_id
            for shard_id in range(N_SHARDS):
                if shard_id != target:
                    assert after_ids[shard_id] == before_ids[shard_id]
            requests = [
                SuggestRequest(query=query, k=8)
                for query in epoch.matrices.queries[:12]
            ]
            expected = [
                suggester.suggest(r.query, k=r.k) for r in requests
            ]
            assert pool.suggest_many(requests) == expected
        finally:
            pool.close()
