"""Streaming observability: ingest counters, epoch lifecycle gauges."""

import pytest

from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog
from repro.obs.registry import MetricsRegistry
from repro.stream import (
    Epoch,
    EpochManager,
    IngestConfig,
    LogIngestor,
    StreamState,
    streaming_pqsda,
)

_T0 = 1_355_000_000.0


def _record(i, user="u1", query=None, url=None, gap=60.0):
    return QueryRecord(
        user_id=user,
        query=query or f"query {i}",
        timestamp=_T0 + i * gap,
        clicked_url=url,
    )


def _fresh(config=None, registry=None):
    state = StreamState()
    state.apply([_record(0, query="bootstrap query")])
    manager = EpochManager(
        Epoch.from_snapshot(0, state.build_snapshot()), registry=registry
    )
    ingestor = LogIngestor(state, manager, config, registry=registry)
    return ingestor, manager


class TestIngestMetrics:
    def test_counters_match_report(self):
        registry = MetricsRegistry()
        ingestor, manager = _fresh(
            IngestConfig(batch_size=10, clean=False), registry
        )
        report = ingestor.ingest(_record(i) for i in range(1, 36))
        assert registry.counter("stream.ingest.records_seen").value == 35
        assert report.records_seen == 35
        assert (
            registry.counter("stream.ingest.records_ingested").value
            == report.records_ingested
        )
        assert (
            registry.counter("stream.ingest.batches").value == report.batches
        )
        assert (
            registry.counter("stream.ingest.epochs_published").value
            == report.epochs_published
        )
        assert (
            registry.histogram("stream.ingest.batch_fold_seconds").count
            == report.batches
        )
        assert registry.gauge(
            "stream.ingest.records_per_second"
        ).value == pytest.approx(report.records_per_second)

    def test_cleaning_gate_counters(self):
        registry = MetricsRegistry()
        ingestor, manager = _fresh(IngestConfig(batch_size=100), registry)
        records = [
            _record(1, query="ok query"),
            _record(2, query="a " * 12),  # too many terms -> dropped
            _record(3, query="also fine"),
        ]
        report = ingestor.ingest(iter(records))
        assert registry.counter("stream.ingest.dropped_terms").value == 1
        assert report.dropped_terms == 1
        assert registry.counter("stream.ingest.records_ingested").value == 2

    def test_detached_by_default(self):
        ingestor, manager = _fresh(IngestConfig(batch_size=10, clean=False))
        report = ingestor.ingest(_record(i) for i in range(1, 12))
        assert report.records_ingested == 11  # no registry, same behaviour


class TestEpochMetrics:
    def test_publish_and_retire_lifecycle(self):
        registry = MetricsRegistry()
        ingestor, manager = _fresh(
            IngestConfig(batch_size=5, clean=False), registry
        )
        ingestor.ingest(_record(i) for i in range(1, 16))
        stats = manager.stats
        assert (
            registry.gauge("stream.epochs.current").value
            == stats.current_epoch
        )
        assert registry.gauge("stream.epochs.live").value == stats.live
        assert registry.gauge("stream.epochs.pinned_readers").value == 0
        # The counter counts events since attach; the bootstrap epoch was
        # published before, so published-since-attach is one less.
        assert (
            registry.counter("stream.epochs.published").value
            == stats.published - 1
        )
        assert (
            registry.counter("stream.epochs.retired").value == stats.retired
        )

    def test_pin_gauge_tracks_reader(self):
        registry = MetricsRegistry()
        ingestor, manager = _fresh(registry=registry)
        pinned = registry.gauge("stream.epochs.pinned_readers")
        with manager.pin():
            assert pinned.value == 1
            with manager.pin():
                assert pinned.value == 2
        assert pinned.value == 0


class TestStreamingPQSDAWiring:
    def test_registry_reaches_all_layers(self):
        records = [
            _record(i, user=f"u{i % 3}", query=f"query {i % 6} x")
            for i in range(30)
        ]
        registry = MetricsRegistry()
        suggester, ingestor, manager = streaming_pqsda(
            QueryLog(records[:20]),
            ingest=IngestConfig(batch_size=5, clean=False),
            registry=registry,
        )
        ingestor.ingest(iter(records[20:]))
        suggester.suggest("query 1 x", k=3)
        names = {
            entry["name"] for entry in registry.snapshot()["metrics"]
        }
        assert "stream.ingest.records_ingested" in names
        assert "stream.epochs.current" in names
        assert "serving.cache.misses" in names
        assert "trace.span.seconds" in names
        # Epoch swaps ran targeted invalidation through the cache.
        assert "serving.cache.invalidation_fanout" in names
