"""Incremental ingestion must be *bit-identical* to a one-shot batch build.

The streaming layer's core guarantee (ISSUE 2 satellite a): replaying a log
through ``StreamState`` in micro-batches — any batch size, including one
record at a time — produces exactly the same bipartite weights, cfiqf
values, matrix structures and suggestion rankings as ``build_matrices`` /
``PQSDA.build`` over the same records.  Equality is asserted on raw arrays
(``array_equal``, no tolerance): the patch path performs the same IEEE
operations on the same operands as the batch path.
"""

import numpy as np
import pytest

from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.graphs.compact import CompactConfig, RandomWalkExpander
from repro.graphs.matrices import build_matrices
from repro.graphs.multibipartite import BIPARTITE_KINDS, build_multibipartite
from repro.logs.sessionizer import sessionize
from repro.logs.storage import QueryLog
from repro.stream import StreamState
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def synthetic_log():
    world = make_world(seed=0)
    return generate_log(
        world,
        GeneratorConfig(n_users=25, mean_sessions_per_user=8, seed=11),
    ).log


@pytest.fixture(scope="module")
def ordered_records(synthetic_log):
    """The batch sessionizer's arrival order: (timestamp, record_id)."""
    return sorted(
        synthetic_log.records, key=lambda r: (r.timestamp, r.record_id)
    )


@pytest.fixture(scope="module")
def batch_matrices(synthetic_log):
    sessions = sessionize(synthetic_log)
    multibipartite = build_multibipartite(
        synthetic_log, sessions, weighted=True
    )
    return build_matrices(multibipartite)


def _replay(records, batch_size, snapshot_every=1):
    """Stream *records* through a fresh state; return the final snapshot."""
    state = StreamState()
    snapshot = None
    batches = 0
    for lo in range(0, len(records), batch_size):
        state.apply(records[lo : lo + batch_size])
        batches += 1
        if batches % snapshot_every == 0:
            snapshot = state.build_snapshot()
    if state.n_pending:
        snapshot = state.build_snapshot()
    return snapshot


def _assert_csr_identical(a, b, label):
    assert a.shape == b.shape, label
    assert np.array_equal(a.indptr, b.indptr), label
    assert np.array_equal(a.indices, b.indices), label
    assert np.array_equal(a.data, b.data), label
    assert a.indices.dtype == b.indices.dtype, label


class TestMatrixEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 10_000])
    def test_bit_identical_to_batch_build(
        self, ordered_records, batch_matrices, batch_size
    ):
        snapshot = _replay(ordered_records, batch_size)
        stream = snapshot.matrices
        assert stream.queries == batch_matrices.queries
        assert stream.query_index == batch_matrices.query_index
        for kind in BIPARTITE_KINDS:
            _assert_csr_identical(
                batch_matrices.incidence[kind],
                stream.incidence[kind],
                f"incidence[{kind}] batch_size={batch_size}",
            )
            _assert_csr_identical(
                batch_matrices.gram[kind],
                stream.gram[kind],
                f"gram[{kind}] batch_size={batch_size}",
            )
            _assert_csr_identical(
                batch_matrices.affinity[kind],
                stream.affinity[kind],
                f"affinity[{kind}] batch_size={batch_size}",
            )

    def test_snapshot_cadence_does_not_matter(
        self, ordered_records, batch_matrices
    ):
        """Patching through many intermediate epochs ends at the same bits."""
        snapshot = _replay(ordered_records, batch_size=16, snapshot_every=3)
        for kind in BIPARTITE_KINDS:
            _assert_csr_identical(
                batch_matrices.incidence[kind],
                snapshot.matrices.incidence[kind],
                f"incidence[{kind}] cadence",
            )

    def test_raw_weighting_equivalence(self, synthetic_log, ordered_records):
        """The raw (non-cfiqf) ablation streams bit-identically too."""
        sessions = sessionize(synthetic_log)
        batch = build_matrices(
            build_multibipartite(synthetic_log, sessions, weighted=False)
        )
        state = StreamState(weighted=False)
        state.apply(ordered_records)
        stream = state.build_snapshot().matrices
        for kind in BIPARTITE_KINDS:
            _assert_csr_identical(
                batch.incidence[kind],
                stream.incidence[kind],
                f"raw incidence[{kind}]",
            )


class TestRepresentationEquivalence:
    def test_bipartite_weights_match_batch(
        self, synthetic_log, ordered_records
    ):
        """The raw bipartite edge dicts match the batch builder's exactly."""
        sessions = sessionize(synthetic_log)
        batch_mb = build_multibipartite(
            synthetic_log, sessions, weighted=False
        )
        state = StreamState(weighted=False)
        state.apply(ordered_records)
        stream_mb = state.build_snapshot().multibipartite
        for kind in BIPARTITE_KINDS:
            batch_bipartite = batch_mb.bipartite(kind)
            stream_bipartite = stream_mb.bipartite(kind)
            assert batch_bipartite.queries == stream_bipartite.queries
            for query in batch_bipartite.queries:
                assert batch_bipartite.facets_of(
                    query
                ) == stream_bipartite.facets_of(query), (kind, query)


class TestSuggestionEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 32])
    def test_rankings_match_batch_build(
        self, synthetic_log, ordered_records, batch_size
    ):
        config = PQSDAConfig(
            compact=CompactConfig(size=60),
            diversify=DiversifyConfig(k=8, candidate_pool=15),
            personalize=False,
        )
        batch_suggester = PQSDA.build(synthetic_log, config=config)
        snapshot = _replay(ordered_records, batch_size)
        # The streaming multibipartite holds raw counts; the cfiqf weights
        # live in the patched matrices, so the expander must come from them.
        stream_suggester = PQSDA.build(
            snapshot.log,
            sessions=[],
            config=config,
            multibipartite=snapshot.multibipartite,
            expander=RandomWalkExpander(
                snapshot.multibipartite, matrices=snapshot.matrices
            ),
        )
        probes = [
            record.query
            for record in ordered_records[:25]
            if record.has_click
        ]
        assert probes
        for probe in probes:
            assert batch_suggester.suggest(probe, k=8) == (
                stream_suggester.suggest(probe, k=8)
            ), probe


class TestLogEquivalence:
    def test_streamed_log_matches_batch_log(
        self, synthetic_log, ordered_records
    ):
        state = StreamState()
        for lo in range(0, len(ordered_records), 50):
            state.apply(ordered_records[lo : lo + 50])
        log = state.build_snapshot().log
        assert len(log) == len(synthetic_log)
        assert sorted(log.unique_queries) == sorted(
            synthetic_log.unique_queries
        )
        for streamed, original in zip(log.records, ordered_records):
            assert streamed.user_id == original.user_id
            assert streamed.query == original.query
            assert streamed.timestamp == original.timestamp
            assert streamed.clicked_url == original.clicked_url
