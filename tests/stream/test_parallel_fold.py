"""Parallel ingest plane: bit-identity, pipelining, crash surfacing.

The contract of :class:`repro.stream.parallel.ParallelStreamState`: at any
worker count, shard count, and micro-batch size (including 1) the epochs
it derives are **bit-identical** to the serial
:class:`~repro.stream.delta.StreamState` fold over the same records — the
per-shard slices, the minimal update sets, and (on demand, through the
lazy plane) the stitched global matrices.  A dead fold worker surfaces as
a named error with the state left at the last published epoch, and
snapshots with nothing dirty skip the per-shard work entirely.
"""

import numpy as np
import pytest

from repro.graphs.multibipartite import BIPARTITE_KINDS
from repro.graphs.shard import ShardPlan
from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog
from repro.obs.registry import MetricsRegistry
from repro.stream import IngestConfig, streaming_pqsda
from repro.stream.delta import StreamState
from repro.stream.parallel import LazyEpochPlane, ParallelStreamState
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

_T0 = 1_700_000_000.0


@pytest.fixture(scope="module")
def records():
    synthetic = generate_log(
        make_world(seed=0),
        GeneratorConfig(n_users=24, mean_sessions_per_user=4, seed=11),
    )
    return sorted(
        synthetic.log.records, key=lambda r: (r.timestamp, r.record_id)
    )


def _csr_equal(left, right):
    return (
        left.shape == right.shape
        and np.array_equal(left.indptr, right.indptr)
        and np.array_equal(left.indices, right.indices)
        and np.array_equal(left.data, right.data)
    )


def _assert_slices_identical(serial_snap, parallel_snap, tag):
    assert serial_snap.touched_queries == parallel_snap.touched_queries, tag
    serial_slices = serial_snap.shard_slices
    parallel_slices = parallel_snap.shard_slices
    assert set(serial_slices) == set(parallel_slices), tag
    for shard_id, expected in serial_slices.items():
        actual = parallel_slices[shard_id]
        assert actual.queries == expected.queries, (tag, shard_id)
        assert np.array_equal(actual.rows, expected.rows), (tag, shard_id)
        assert actual.closed == expected.closed, (tag, shard_id)
        assert actual.n_queries_global == expected.n_queries_global
        assert (actual.gram is None) == (expected.gram is None), (tag, shard_id)
        for kind in BIPARTITE_KINDS:
            assert actual.facet_names[kind] == expected.facet_names[kind]
            assert _csr_equal(
                actual.incidence[kind], expected.incidence[kind]
            ), (tag, shard_id, kind)
            if expected.gram is not None:
                assert _csr_equal(actual.gram[kind], expected.gram[kind])
        assert _csr_equal(actual.forward_stack, expected.forward_stack)
        assert _csr_equal(actual.backward_stack, expected.backward_stack)
    assert (serial_snap.shard_updates is None) == (
        parallel_snap.shard_updates is None
    ), tag
    if serial_snap.shard_updates is not None:
        assert set(serial_snap.shard_updates) == set(
            parallel_snap.shard_updates
        ), tag


def _assert_matrices_identical(serial_snap, parallel_snap, tag):
    expected = serial_snap.matrices
    actual = parallel_snap.matrices  # forces the lazy plane
    assert actual.queries == expected.queries, tag
    for kind in BIPARTITE_KINDS:
        assert _csr_equal(actual.incidence[kind], expected.incidence[kind])
        assert _csr_equal(actual.gram[kind], expected.gram[kind])
        assert _csr_equal(actual.affinity[kind], expected.affinity[kind])


def _epoch_cuts(n_records, batch_size):
    """Micro-batch bounds plus snapshot points (~3 epochs per run)."""
    bounds = list(range(0, n_records, batch_size)) + [n_records]
    batches = list(zip(bounds[:-1], bounds[1:]))
    every = max(1, len(batches) // 3)
    return batches, every


class TestBitIdentity:
    """Serial/parallel equality at every geometry the issue names."""

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("batch_size", [1, 256])
    def test_identical_to_serial(
        self, records, n_workers, n_shards, batch_size
    ):
        subset = records[:48] if batch_size == 1 else records
        plan = ShardPlan.hashed(n_shards)
        serial = StreamState(weighted=True, shard_plan=plan)
        parallel = ParallelStreamState(
            weighted=True, shard_plan=plan, fold_workers=n_workers
        )
        batches, every = _epoch_cuts(len(subset), batch_size)
        tag = f"w{n_workers} s{n_shards} b{batch_size}"
        try:
            for i, (lo, hi) in enumerate(batches):
                serial_delta = serial.apply(subset[lo:hi])
                parallel_delta = parallel.apply(subset[lo:hi])
                assert serial_delta == parallel_delta, (tag, i)
                if (i + 1) % every == 0 or (lo, hi) == batches[-1]:
                    serial_snap = serial.build_snapshot()
                    parallel_snap = parallel.build_snapshot()
                    _assert_slices_identical(
                        serial_snap, parallel_snap, (tag, i)
                    )
            _assert_matrices_identical(serial_snap, parallel_snap, tag)
        finally:
            parallel.close()

    def test_unweighted_minimal_updates_match(self, records):
        """Raw-count states produce the same minimal per-shard update sets."""
        plan = ShardPlan.hashed(4)
        serial = StreamState(weighted=False, shard_plan=plan)
        parallel = ParallelStreamState(
            weighted=False, shard_plan=plan, fold_workers=2
        )
        cut = len(records) * 2 // 3
        try:
            serial.apply(records[:cut])
            parallel.apply(records[:cut])
            _assert_slices_identical(
                serial.build_snapshot(), parallel.build_snapshot(), "boot"
            )
            for i, lo in enumerate(range(cut, len(records), 40)):
                chunk = records[lo : lo + 40]
                serial.apply(chunk)
                parallel.apply(chunk)
                serial_snap = serial.build_snapshot()
                parallel_snap = parallel.build_snapshot()
                _assert_slices_identical(serial_snap, parallel_snap, i)
                if serial_snap.shard_updates is not None:
                    # Reused shards are the previous epoch's objects on
                    # both sides — identity, not just equality.
                    for shard_id, piece in parallel_snap.shard_slices.items():
                        if shard_id not in parallel_snap.shard_updates:
                            assert piece is serial_snap.shard_slices.get(
                                shard_id
                            ) or _csr_equal(
                                piece.incidence["T"],
                                serial_snap.shard_slices[shard_id].incidence[
                                    "T"
                                ],
                            )
            _assert_matrices_identical(serial_snap, parallel_snap, "final")
        finally:
            parallel.close()


class TestLazyPlane:
    """Parallel epochs defer the global plane until something reads it."""

    def test_snapshot_plane_stays_cold_until_read(self, records):
        plan = ShardPlan.hashed(2)
        state = ParallelStreamState(
            weighted=False, shard_plan=plan, fold_workers=2
        )
        try:
            state.apply(records[:80])
            snapshot = state.build_snapshot()
            assert isinstance(snapshot.plane, LazyEpochPlane)
            assert not snapshot.plane.materialized
            # Reading through the matrices proxy stitches exactly once.
            n_queries = len(snapshot.matrices.queries)
            assert snapshot.plane.materialized
            assert n_queries == snapshot.shard_slices[0].n_queries_global
        finally:
            state.close()

    def test_epoch_publish_does_not_force_plane(self, records):
        from repro.stream.epoch import Epoch, EpochManager

        plan = ShardPlan.hashed(2)
        state = ParallelStreamState(
            weighted=False, shard_plan=plan, fold_workers=1
        )
        try:
            state.apply(records[:60])
            snapshot = state.build_snapshot()
            epoch = Epoch.from_snapshot(0, snapshot)
            manager = EpochManager(epoch)
            assert not snapshot.plane.materialized
            # A walk through the epoch expander forces it lazily.
            seeds = {snapshot.shard_slices[0].queries[0]: 1.0}
            assert epoch.expander.expand(seeds)
            assert snapshot.plane.materialized
            assert manager.current() is epoch
        finally:
            state.close()


class TestDirtyShortCircuit:
    """Empty-dirty snapshots skip the per-shard derivation entirely."""

    def test_untouched_snapshot_skips_slice_derivation(
        self, records, monkeypatch
    ):
        plan = ShardPlan.hashed(4)
        state = StreamState(weighted=False, shard_plan=plan)
        state.apply(records[:80])
        first = state.build_snapshot()

        import repro.stream.delta as delta_module

        def _boom(*args, **kwargs):
            raise AssertionError("slice derivation ran on an empty delta")

        monkeypatch.setattr(delta_module, "build_shard_slices", _boom)
        # Empty-query records grow the log but touch no shard; with raw
        # counts that leaves every slice byte-stable.
        state.apply(
            [
                QueryRecord(
                    user_id="u-blank",
                    query="???",
                    timestamp=_T0,
                    clicked_url=None,
                )
            ]
        )
        second = state.build_snapshot()
        assert second.shard_updates == {}
        for shard_id, piece in second.shard_slices.items():
            assert piece is first.shard_slices[shard_id]

    def test_foreign_impurity_redeives_flipped_shard(self, records):
        """A foreign edge that opens a closed shard must dirty it."""
        plan = ShardPlan.hashed(2)
        serial = StreamState(weighted=False, shard_plan=plan)
        parallel = ParallelStreamState(
            weighted=False, shard_plan=plan, fold_workers=2
        )
        base = [
            QueryRecord("u1", "alpha beam", _T0, clicked_url="http://a"),
            QueryRecord("u2", "delta flux", _T0 + 1, clicked_url="http://d"),
        ]
        try:
            for state in (serial, parallel):
                state.apply(base)
            _assert_slices_identical(
                serial.build_snapshot(), parallel.build_snapshot(), "base"
            )
            # A new click from whichever query shares a URL across shards
            # impurifies that column for both shards.
            cross = [
                QueryRecord("u1", "alpha beam", _T0 + 9, clicked_url="http://d")
            ]
            serial.apply(cross)
            parallel.apply(cross)
            serial_snap = serial.build_snapshot()
            parallel_snap = parallel.build_snapshot()
            _assert_slices_identical(serial_snap, parallel_snap, "cross")
            _assert_matrices_identical(serial_snap, parallel_snap, "cross")
        finally:
            parallel.close()


class TestWorkerCrash:
    """A dead fold worker surfaces by name; published epochs survive."""

    def test_dead_worker_raises_named_error(self, records):
        plan = ShardPlan.hashed(2)
        state = ParallelStreamState(
            weighted=False, shard_plan=plan, fold_workers=2
        )
        try:
            state.apply(records[:40])
            state.build_snapshot()
            state.apply(records[40:60])
            state._workers[0].process.kill()
            state._workers[0].process.join(timeout=5.0)
            with pytest.raises(RuntimeError, match="fold worker 0"):
                state.build_snapshot()
        finally:
            state.close()

    def test_crash_mid_ingest_keeps_last_epoch(self, records):
        cut = len(records) // 2
        suggester, ingestor, manager = streaming_pqsda(
            QueryLog(tuple(records[:cut])),
            ingest=IngestConfig(batch_size=32, clean=False),
            shard_plan=ShardPlan.hashed(2),
            fold_workers=2,
        )
        state = ingestor.state
        try:
            ingestor.ingest(records[cut : cut + 64])
            published = manager.current().epoch_id
            assert published >= 1
            for worker in state._workers:
                worker.process.kill()
                worker.process.join(timeout=5.0)
            with pytest.raises(RuntimeError, match="fold worker"):
                ingestor.ingest(records[cut + 64 :])
            # The manager still serves the last successfully published
            # epoch; the failed snapshot never reached it.
            assert manager.current().epoch_id == published
        finally:
            state.close()


class TestPipelinedIngest:
    """The ingestor's one-deep publish pipeline matches serial epochs."""

    def test_streaming_pqsda_parallel_matches_serial(self, records):
        cut = len(records) // 2
        plan = ShardPlan.hashed(2)
        runs = {}
        for fold_workers in (0, 2):
            suggester, ingestor, manager = streaming_pqsda(
                QueryLog(tuple(records[:cut])),
                ingest=IngestConfig(batch_size=48, clean=False),
                shard_plan=plan,
                fold_workers=fold_workers,
            )
            try:
                report = ingestor.ingest(records[cut:])
                runs[fold_workers] = (manager.current(), report)
            finally:
                if fold_workers:
                    ingestor.state.close()
        serial_epoch, serial_report = runs[0]
        parallel_epoch, parallel_report = runs[2]
        assert parallel_epoch.epoch_id == serial_epoch.epoch_id
        assert parallel_report.epochs_published == (
            serial_report.epochs_published
        )
        assert parallel_report.records_ingested == (
            serial_report.records_ingested
        )
        assert serial_epoch.log.total_queries == (
            parallel_epoch.log.total_queries
        )
        for kind in BIPARTITE_KINDS:
            assert _csr_equal(
                parallel_epoch.matrices.incidence[kind],
                serial_epoch.matrices.incidence[kind],
            )

    def test_report_splits_fold_and_publish_time(self, records):
        registry = MetricsRegistry()
        cut = len(records) // 2
        suggester, ingestor, manager = streaming_pqsda(
            QueryLog(tuple(records[:cut])),
            ingest=IngestConfig(batch_size=32, clean=False),
            registry=registry,
        )
        report = ingestor.ingest(records[cut:])
        assert report.fold_seconds > 0.0
        assert report.publish_seconds > 0.0
        assert report.fold_seconds + report.publish_seconds <= (
            report.elapsed_seconds
        )
        assert report.fold_records_per_second > report.records_per_second
        histogram = registry.histogram("stream.ingest.publish_seconds")
        assert histogram.count == report.epochs_published

    def test_parallel_metrics_exported(self, records):
        registry = MetricsRegistry()
        plan = ShardPlan.hashed(2)
        state = ParallelStreamState(
            weighted=False,
            shard_plan=plan,
            fold_workers=2,
            registry=registry,
        )
        try:
            state.apply(records[:60])
            state.build_snapshot()
            assert registry.gauge("stream.ingest.fold_workers").value == 2
            observed = sum(
                registry.histogram(
                    "stream.ingest.shard_fold_seconds",
                    labels={"shard": str(shard_id)},
                ).count
                for shard_id in range(plan.n_shards)
            )
            assert observed == plan.n_shards  # first build derives all
        finally:
            state.close()


class TestValidation:
    def test_requires_shard_plan(self):
        with pytest.raises(ValueError, match="shard_plan"):
            ParallelStreamState(shard_plan=None, fold_workers=2)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="fold_workers"):
            ParallelStreamState(
                shard_plan=ShardPlan.hashed(2), fold_workers=0
            )

    def test_workers_capped_by_shards(self, records):
        state = ParallelStreamState(
            weighted=False, shard_plan=ShardPlan.hashed(2), fold_workers=8
        )
        try:
            assert state.fold_workers == 2
            assert sorted(
                shard
                for shards in state.home_map.values()
                for shard in shards
            ) == [0, 1]
        finally:
            state.close()

    def test_streaming_pqsda_fold_workers_requires_plan(self, records):
        with pytest.raises(ValueError, match="shard_plan"):
            streaming_pqsda(QueryLog(tuple(records[:10])), fold_workers=2)

    def test_double_begin_rejected(self, records):
        state = ParallelStreamState(
            weighted=False, shard_plan=ShardPlan.hashed(2), fold_workers=1
        )
        try:
            state.apply(records[:20])
            token = state.begin_snapshot()
            with pytest.raises(RuntimeError, match="in flight"):
                state.begin_snapshot()
            state.finish_snapshot(token)
        finally:
            state.close()
