"""Tests for repro.utils.ranking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.ranking import (
    RankedList,
    borda_aggregate,
    kendall_tau_distance,
    ranks_from_scores,
)


class TestRankedList:
    def test_order_and_rank(self):
        ranked = RankedList(["a", "b", "c"])
        assert ranked[0] == "a"
        assert ranked.rank_of("c") == 2
        assert len(ranked) == 3

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RankedList(["a", "a"])

    def test_contains(self):
        ranked = RankedList(["a"])
        assert "a" in ranked
        assert "z" not in ranked

    def test_top(self):
        ranked = RankedList(["a", "b", "c"])
        assert ranked.top(2) == ["a", "b"]
        assert ranked.top(10) == ["a", "b", "c"]

    def test_top_negative_rejected(self):
        with pytest.raises(ValueError):
            RankedList(["a"]).top(-1)

    def test_equality_with_list(self):
        assert RankedList(["x", "y"]) == ["x", "y"]
        assert RankedList(["x", "y"]) == RankedList(["x", "y"])


class TestRanksFromScores:
    def test_descending_default(self):
        ranked = ranks_from_scores({"a": 0.1, "b": 0.9, "c": 0.5})
        assert list(ranked) == ["b", "c", "a"]

    def test_ascending(self):
        ranked = ranks_from_scores({"a": 3.0, "b": 1.0}, descending=False)
        assert list(ranked) == ["b", "a"]

    def test_tie_broken_deterministically(self):
        ranked1 = ranks_from_scores({"b": 1.0, "a": 1.0})
        ranked2 = ranks_from_scores({"a": 1.0, "b": 1.0})
        assert list(ranked1) == list(ranked2)


class TestBorda:
    def test_single_ranking_preserved(self):
        agg = borda_aggregate([["a", "b", "c"]])
        assert list(agg) == ["a", "b", "c"]

    def test_agreeing_rankings(self):
        agg = borda_aggregate([["a", "b"], ["a", "b"]])
        assert list(agg) == ["a", "b"]

    def test_opposite_rankings_tie_broken_by_first(self):
        agg = borda_aggregate([["a", "b"], ["b", "a"]])
        assert list(agg) == ["a", "b"]

    def test_weights_shift_winner(self):
        agg = borda_aggregate([["a", "b"], ["b", "a"]], weights=[1.0, 3.0])
        assert list(agg)[0] == "b"

    def test_missing_items_get_zero_points(self):
        # "c" appears only in the second ranking.
        agg = borda_aggregate([["a", "b"], ["c", "a", "b"]])
        assert set(agg) == {"a", "b", "c"}
        assert list(agg)[0] == "a"

    def test_empty_rankings_rejected(self):
        with pytest.raises(ValueError):
            borda_aggregate([])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            borda_aggregate([["a"]], weights=[1.0, 2.0])

    def test_classic_borda_example(self):
        # Three voters: two prefer a>b>c, one prefers c>b>a.
        agg = borda_aggregate([["a", "b", "c"], ["a", "b", "c"], ["c", "b", "a"]])
        assert list(agg) == ["a", "b", "c"]


class TestKendallTau:
    def test_identical(self):
        assert kendall_tau_distance(["a", "b", "c"], ["a", "b", "c"]) == 0.0

    def test_reversed(self):
        assert kendall_tau_distance(["a", "b", "c"], ["c", "b", "a"]) == 1.0

    def test_single_swap(self):
        assert kendall_tau_distance(["a", "b", "c"], ["b", "a", "c"]) == pytest.approx(
            1 / 3
        )

    def test_different_sets_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau_distance(["a"], ["b"])

    def test_short_lists(self):
        assert kendall_tau_distance(["a"], ["a"]) == 0.0
        assert kendall_tau_distance([], []) == 0.0


@given(st.permutations(list("abcdef")))
def test_borda_of_identical_rankings_is_identity(perm):
    perm = list(perm)
    assert list(borda_aggregate([perm, perm, perm])) == perm


@given(st.permutations(list("abcde")), st.permutations(list("abcde")))
def test_kendall_tau_symmetric_and_bounded(left, right):
    left, right = list(left), list(right)
    d = kendall_tau_distance(left, right)
    assert 0.0 <= d <= 1.0
    assert d == pytest.approx(kendall_tau_distance(right, left))
