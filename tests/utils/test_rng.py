"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, ensure_rng


class TestEnsureRng:
    def test_accepts_int_seed(self):
        rng = ensure_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_stream(self):
        a = ensure_rng(7).integers(0, 1000, size=10)
        b = ensure_rng(7).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9, size=10)
        b = ensure_rng(2).integers(0, 10**9, size=10)
        assert not (a == b).all()

    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_deterministic_given_parent_state(self):
        a = derive_rng(ensure_rng(5), "component").integers(0, 10**9, size=5)
        b = derive_rng(ensure_rng(5), "component").integers(0, 10**9, size=5)
        assert (a == b).all()

    def test_different_keys_different_streams(self):
        parent = ensure_rng(5)
        a = derive_rng(parent, "alpha")
        parent = ensure_rng(5)
        b = derive_rng(parent, "beta")
        assert not (
            a.integers(0, 10**9, size=8) == b.integers(0, 10**9, size=8)
        ).all()

    def test_integer_keys_supported(self):
        child = derive_rng(ensure_rng(0), 3, "user")
        assert isinstance(child, np.random.Generator)

    def test_string_key_stable_across_calls(self):
        # crc32-based hashing must not depend on interpreter hash seed.
        a = derive_rng(ensure_rng(9), "stable-key").integers(0, 10**9)
        b = derive_rng(ensure_rng(9), "stable-key").integers(0, 10**9)
        assert a == b


@pytest.mark.parametrize("seed", [0, 1, 2**31 - 1])
def test_ensure_rng_handles_boundary_seeds(seed):
    assert isinstance(ensure_rng(seed), np.random.Generator)
