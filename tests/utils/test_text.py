"""Tests for repro.utils.text."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.text import (
    STOPWORDS,
    cosine_similarity_bags,
    jaccard,
    normalize_query,
    term_vector,
    tokenize,
)


class TestNormalizeQuery:
    def test_lowercases(self):
        assert normalize_query("Sun Java") == "sun java"

    def test_strips_punctuation(self):
        assert normalize_query("sun-java, download!") == "sun java download"

    def test_collapses_whitespace(self):
        assert normalize_query("  sun   java  ") == "sun java"

    def test_empty(self):
        assert normalize_query("") == ""
        assert normalize_query("!!!") == ""

    def test_keeps_digits(self):
        assert normalize_query("windows 95") == "windows 95"

    def test_idempotent(self):
        q = "Sun.Java/Download"
        assert normalize_query(normalize_query(q)) == normalize_query(q)


class TestTokenize:
    def test_drops_stopwords_by_default(self):
        assert tokenize("the sun and the moon") == ["sun", "moon"]

    def test_keep_stopwords(self):
        assert tokenize("the sun", drop_stopwords=False) == ["the", "sun"]

    def test_agrees_with_normalize(self):
        q = "The Sun-Java? Download"
        assert " ".join(tokenize(q, drop_stopwords=False)) == normalize_query(q)

    def test_url_junk_is_stopworded(self):
        assert "www" in STOPWORDS
        assert tokenize("www java com") == ["java"]


class TestCosine:
    def test_identical_bags(self):
        bag = Counter({"sun": 2, "java": 1})
        assert cosine_similarity_bags(bag, bag) == pytest.approx(1.0)

    def test_disjoint_bags(self):
        assert cosine_similarity_bags(Counter("ab"), Counter("cd")) == 0.0

    def test_empty_bag(self):
        assert cosine_similarity_bags(Counter(), Counter({"x": 1})) == 0.0

    def test_symmetry(self):
        a = Counter({"sun": 3, "solar": 1})
        b = Counter({"solar": 2, "energy": 5})
        assert cosine_similarity_bags(a, b) == pytest.approx(
            cosine_similarity_bags(b, a)
        )

    def test_known_value(self):
        a = Counter({"x": 1, "y": 1})
        b = Counter({"x": 1})
        assert cosine_similarity_bags(a, b) == pytest.approx(2**-0.5)


class TestJaccard:
    def test_identical(self):
        assert jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_both_empty(self):
        assert jaccard([], []) == 0.0

    def test_half_overlap(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)


@given(st.text(max_size=80))
def test_normalize_never_raises_and_is_clean(text):
    out = normalize_query(text)
    assert out == out.strip()
    assert "  " not in out
    assert out == out.lower()


@given(st.text(max_size=80))
def test_term_vector_counts_tokens(text):
    vec = term_vector(text)
    assert sum(vec.values()) == len(tokenize(text))


@given(
    st.lists(st.sampled_from("abcdef"), max_size=8),
    st.lists(st.sampled_from("abcdef"), max_size=8),
)
def test_jaccard_bounds(left, right):
    value = jaccard(left, right)
    assert 0.0 <= value <= 1.0
