"""Tests for repro.utils.timer and repro.utils.validation."""

import threading
import time

import pytest

from repro.utils.timer import Timer
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert timer.calls == 2
        assert timer.elapsed >= 0.02

    def test_mean(self):
        timer = Timer()
        assert timer.mean == 0.0
        with timer:
            pass
        assert timer.mean == timer.elapsed

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.calls == 0

    def test_exit_without_enter(self):
        with pytest.raises(RuntimeError):
            Timer().__exit__(None, None, None)

    def test_nested_blocks_keep_outer_start(self):
        """The clobbering bug: an inner ``with`` must not reset the outer
        block's start time (both blocks accumulate, outer >= inner)."""
        timer = Timer()
        with timer:
            time.sleep(0.01)
            with timer:
                time.sleep(0.01)
        assert timer.calls == 2
        # inner ~0.01 + outer ~0.02; a clobbered start would lose the
        # outer block's first 0.01s and total ~0.02 only.
        assert timer.elapsed >= 0.03

    def test_concurrent_threads_time_independently(self):
        timer = Timer()
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            with timer:
                time.sleep(0.02)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert timer.calls == 4
        # Each overlapping block contributes its own full duration; with
        # one shared start slot the first exits would subtract a later
        # thread's (re-written) start and undercount badly.
        assert timer.elapsed >= 4 * 0.02

    def test_reset_during_open_block(self):
        timer = Timer()
        with timer:
            timer.reset()
            time.sleep(0.005)
        assert timer.calls == 1
        assert timer.elapsed >= 0.005


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.0001)

    def test_check_in_range_inclusive(self):
        assert check_in_range("v", 5, 5, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("v", 4.999, 5, 10)

    def test_check_in_range_exclusive(self):
        assert check_in_range("v", 6, 5, 10, inclusive=False) == 6
        with pytest.raises(ValueError):
            check_in_range("v", 5, 5, 10, inclusive=False)
