"""Tests for repro.personalize.reranker (the (P)-wrapped baselines)."""

import pytest

from repro.baselines.base import Suggester
from repro.logs.sessionizer import sessionize
from repro.personalize.profiles import UserProfileStore
from repro.personalize.reranker import PersonalizedReranker
from repro.personalize.upm import UPM, UPMConfig
from repro.topicmodels.corpus import build_corpus
from tests.personalize.test_upm import two_topic_log


class _FixedSuggester(Suggester):
    name = "FIXED"

    def __init__(self, output):
        self._output = output

    def suggest(self, query, k=10, user_id=None, context=(), timestamp=0.0):
        return list(self._output[:k])


@pytest.fixture(scope="module")
def store():
    log = two_topic_log()
    corpus = build_corpus(log, sessionize(log))
    model = UPM(UPMConfig(n_topics=2, iterations=30, seed=0)).fit(corpus)
    return UserProfileStore(model)


class TestPersonalizedReranker:
    def test_name_follows_paper_convention(self, store):
        wrapped = PersonalizedReranker(_FixedSuggester([]), store)
        assert wrapped.name == "FIXED(P)"
        assert wrapped.base.name == "FIXED"

    def test_reranks_toward_user_preference(self, store):
        base = _FixedSuggester(["telescope orbit", "comet orbit", "java jvm"])
        wrapped = PersonalizedReranker(base, store, personalization_weight=5.0)
        # u0 is the java user: "java jvm" should rise from last place.
        reranked = wrapped.suggest("anything", k=3, user_id="u0")
        assert reranked.index("java jvm") < 2

    def test_anonymous_passthrough(self, store):
        base = _FixedSuggester(["a", "b", "c"])
        wrapped = PersonalizedReranker(base, store)
        assert wrapped.suggest("q", k=3) == ["a", "b", "c"]

    def test_unknown_user_passthrough(self, store):
        base = _FixedSuggester(["a", "b", "c"])
        wrapped = PersonalizedReranker(base, store)
        assert wrapped.suggest("q", k=3, user_id="ghost") == ["a", "b", "c"]

    def test_empty_base_output(self, store):
        wrapped = PersonalizedReranker(_FixedSuggester([]), store)
        assert wrapped.suggest("q", user_id="u0") == []

    def test_same_candidate_set(self, store):
        base = _FixedSuggester(["telescope orbit", "java jvm", "comet orbit"])
        wrapped = PersonalizedReranker(base, store)
        assert sorted(wrapped.suggest("q", k=3, user_id="u1")) == sorted(
            base.suggest("q", k=3)
        )

    def test_negative_weight_rejected(self, store):
        with pytest.raises(ValueError):
            PersonalizedReranker(_FixedSuggester([]), store, -1.0)
