"""Tests for document-parallel UPM Gibbs sampling (reference engine).

These pin ``engine="reference"`` to keep the historical thread-pool path
covered; the fast engine's process sharding has its own bit-identity suite
in ``test_fast_engine.py``.
"""

import numpy as np
import pytest

from repro.logs.sessionizer import sessionize
from repro.personalize.upm import UPM, UPMConfig
from repro.topicmodels.corpus import build_corpus
from tests.personalize.test_upm import two_topic_log


@pytest.fixture(scope="module")
def corpus():
    log = two_topic_log(sessions_per_user=5, users=8)
    return build_corpus(log, sessionize(log))


class TestParallelGibbs:
    def test_n_workers_validated(self):
        with pytest.raises(ValueError):
            UPMConfig(n_workers=0)

    @pytest.mark.parametrize("n_workers", [2, 4, 16])
    def test_parallel_bit_identical_to_serial(self, corpus, n_workers):
        # The document partition is exact for the UPM: any worker count
        # must give the same posterior state as the serial run.
        base = UPMConfig(
            n_topics=2, iterations=12, seed=3, engine="reference", n_workers=1
        )
        serial = UPM(base).fit(corpus)
        parallel = UPM(
            UPMConfig(
                n_topics=2, iterations=12, seed=3, engine="reference",
                n_workers=n_workers,
            )
        ).fit(corpus)
        assert np.array_equal(serial.theta, parallel.theta)
        assert np.array_equal(serial.beta, parallel.beta)
        assert np.array_equal(serial.delta, parallel.delta)
        assert np.array_equal(serial.tau, parallel.tau)

    def test_parallel_with_hyperopt(self, corpus):
        serial = UPM(
            UPMConfig(
                n_topics=2, iterations=10, hyperopt_every=5, seed=0,
                engine="reference", n_workers=1,
            )
        ).fit(corpus)
        parallel = UPM(
            UPMConfig(
                n_topics=2, iterations=10, hyperopt_every=5, seed=0,
                engine="reference", n_workers=3,
            )
        ).fit(corpus)
        assert np.array_equal(serial.theta, parallel.theta)

    def test_more_workers_than_documents(self, corpus):
        model = UPM(
            UPMConfig(
                n_topics=2, iterations=3, seed=0, engine="reference",
                n_workers=100,
            )
        ).fit(corpus)
        assert model.theta.shape[0] == corpus.n_documents

    def test_parallel_scoring_works(self, corpus):
        model = UPM(
            UPMConfig(
                n_topics=2, iterations=10, seed=0, engine="reference",
                n_workers=2,
            )
        ).fit(corpus)
        assert model.preference_score("u0", "java jvm") > 0
