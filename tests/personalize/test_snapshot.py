"""Tests for repro.personalize.snapshot (profile persistence)."""

import io

import pytest

from repro.logs.sessionizer import sessionize
from repro.personalize.profiles import UserProfileStore
from repro.personalize.snapshot import ProfileSnapshot, SnapshotStore
from repro.personalize.upm import UPM, UPMConfig
from repro.topicmodels.corpus import build_corpus
from tests.personalize.test_upm import two_topic_log


@pytest.fixture(scope="module")
def fitted():
    log = two_topic_log()
    corpus = build_corpus(log, sessionize(log))
    model = UPM(UPMConfig(n_topics=2, iterations=30, seed=0)).fit(corpus)
    return model


@pytest.fixture(scope="module")
def snapshot(fitted):
    return SnapshotStore.from_model(fitted)


class TestFromModel:
    def test_covers_all_users(self, fitted, snapshot):
        assert len(snapshot) == fitted.corpus.n_documents
        assert "u0" in snapshot
        assert "ghost" not in snapshot

    def test_theta_preserved(self, fitted, snapshot):
        for d, doc in enumerate(fitted.corpus.documents):
            theta = snapshot.profile(doc.user_id).theta
            assert theta == pytest.approx(tuple(fitted.theta[d]))

    def test_scores_match_live_store(self, fitted, snapshot):
        live = UserProfileStore(fitted)
        for user_id in ("u0", "u1"):
            for query in ("java jvm", "telescope orbit", "comet orbit"):
                assert snapshot.score(user_id, query) == pytest.approx(
                    live.score(user_id, query), abs=1e-4
                )

    def test_rankings_match_live_store(self, fitted, snapshot):
        live = UserProfileStore(fitted)
        candidates = ["java jvm", "telescope orbit", "java applet"]
        for user_id in ("u0", "u1"):
            assert list(snapshot.rank_candidates(user_id, candidates)) == list(
                live.rank_candidates(user_id, candidates)
            )

    def test_truncation_respected(self, fitted):
        tiny = SnapshotStore.from_model(fitted, top_words=3)
        assert len(tiny.profile("u0").predictive) <= 3

    def test_invalid_top_words(self, fitted):
        with pytest.raises(ValueError):
            SnapshotStore.from_model(fitted, top_words=0)

    def test_unknown_user_scores_zero(self, snapshot):
        assert snapshot.score("ghost", "java") == 0.0

    def test_empty_query_scores_zero(self, snapshot):
        assert snapshot.score("u0", "") == 0.0
        assert snapshot.score("u0", "the and of") == 0.0


class TestRoundTrip:
    def test_json_buffer_roundtrip(self, snapshot):
        buffer = io.StringIO()
        snapshot.to_json(buffer)
        buffer.seek(0)
        restored = SnapshotStore.from_json(buffer)
        assert restored.user_ids == snapshot.user_ids
        for user_id in snapshot.user_ids:
            assert restored.score(user_id, "java jvm") == pytest.approx(
                snapshot.score(user_id, "java jvm")
            )

    def test_file_roundtrip(self, snapshot, tmp_path):
        path = tmp_path / "profiles.json"
        snapshot.to_json(path)
        restored = SnapshotStore.from_json(path)
        assert len(restored) == len(snapshot)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else", "profiles": []}')
        with pytest.raises(ValueError, match="unrecognised"):
            SnapshotStore.from_json(path)

    def test_profile_snapshot_score_floor(self):
        profile = ProfileSnapshot("u", (1.0,), {"java": 0.5})
        # "jvm" falls back to the floor, not zero.
        assert 0 < profile.score("jvm") < profile.score("java")
