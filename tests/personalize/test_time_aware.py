"""Tests for time-aware preference scoring (UPM.profile_at)."""

import numpy as np
import pytest

from repro.logs.sessionizer import sessionize
from repro.personalize.upm import UPM, UPMConfig
from repro.topicmodels.corpus import build_corpus
from tests.personalize.test_upm import two_topic_log


@pytest.fixture(scope="module")
def mixed_user_model():
    """A user interested in BOTH topics, but at different times.

    Sessions 0..4 are java-themed (early); sessions 5..9 astronomy-themed
    (late).  The UPM's Beta time channel should learn this split, and
    profile_at must shift the mixture accordingly.
    """
    from repro.logs.schema import QueryRecord
    from repro.logs.storage import QueryLog

    records = []
    java = ["java jvm", "java applet", "jvm jdk", "java servlet", "jvm swing"]
    astro = ["telescope orbit", "comet nebula", "orbit planet",
             "telescope nebula", "comet planet"]
    # Several users with the same pattern give beta pooled evidence.
    for u in range(6):
        for s, query in enumerate(java):
            records.append(
                QueryRecord(
                    f"u{u}", query, s * 100_000.0 + u,
                    clicked_url="www.java.com",
                )
            )
        for s, query in enumerate(astro):
            records.append(
                QueryRecord(
                    f"u{u}", query, 1_000_000.0 + s * 100_000.0 + u,
                    clicked_url="www.nasa.gov",
                )
            )
    log = QueryLog(records)
    corpus = build_corpus(log, sessionize(log))
    model = UPM(
        UPMConfig(n_topics=2, iterations=40, hyperopt_every=20, seed=0)
    ).fit(corpus)
    return corpus, model


class TestProfileAt:
    def test_is_distribution(self, mixed_user_model):
        _, model = mixed_user_model
        for t in (0.0, 0.3, 0.7, 1.0):
            profile = model.profile_at("u0", t)
            assert profile.sum() == pytest.approx(1.0)
            assert (profile >= 0).all()

    def test_time_shifts_mixture(self, mixed_user_model):
        corpus, model = mixed_user_model
        early = model.profile_at("u0", 0.05)
        late = model.profile_at("u0", 0.95)
        # Identify the java topic via the word distribution.
        java_id = corpus.id_of_word["java"]
        phi = model.topic_word_distribution(corpus.doc_index["u0"])
        java_topic = int(phi[:, java_id].argmax())
        assert early[java_topic] > late[java_topic]

    def test_time_changes_preference_scores(self, mixed_user_model):
        _, model = mixed_user_model
        early_java = model.preference_score("u0", "java jvm", t_norm=0.05)
        late_java = model.preference_score("u0", "java jvm", t_norm=0.95)
        assert early_java > late_java
        early_astro = model.preference_score(
            "u0", "telescope orbit", t_norm=0.05
        )
        late_astro = model.preference_score(
            "u0", "telescope orbit", t_norm=0.95
        )
        assert late_astro > early_astro

    def test_no_time_channel_returns_static_theta(self):
        log = two_topic_log(sessions_per_user=4, users=6)
        corpus = build_corpus(log, sessionize(log))
        model = UPM(
            UPMConfig(n_topics=2, iterations=10, use_time=False, seed=0)
        ).fit(corpus)
        theta = model.theta[corpus.doc_index["u0"]]
        assert np.allclose(model.profile_at("u0", 0.1), theta)
        assert np.allclose(model.profile_at("u0", 0.9), theta)

    def test_t_norm_validated(self, mixed_user_model):
        _, model = mixed_user_model
        with pytest.raises(ValueError):
            model.profile_at("u0", 1.5)

    def test_none_t_matches_static_score(self, mixed_user_model):
        _, model = mixed_user_model
        static = model.preference_score("u0", "java jvm")
        assert static == pytest.approx(
            model.preference_score("u0", "java jvm", t_norm=None)
        )


class TestCorpusTimeNormalization:
    def test_normalize_time_roundtrip(self, mixed_user_model):
        corpus, _ = mixed_user_model
        assert corpus.normalize_time(corpus.time_low) == 0.0
        assert corpus.normalize_time(
            corpus.time_low + corpus.time_span
        ) == 1.0

    def test_clamped(self, mixed_user_model):
        corpus, _ = mixed_user_model
        assert corpus.normalize_time(corpus.time_low - 999) == 0.0
        assert corpus.normalize_time(corpus.time_low + 10 * corpus.time_span) == 1.0

    def test_split_preserves_window(self, mixed_user_model):
        corpus, _ = mixed_user_model
        observed, _ = corpus.split_prefix(0.5)
        assert observed.time_low == corpus.time_low
        assert observed.time_span == corpus.time_span
