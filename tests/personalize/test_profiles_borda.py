"""Tests for repro.personalize.profiles and repro.personalize.borda."""

import numpy as np
import pytest

from repro.logs.sessionizer import sessionize
from repro.personalize.borda import personalize_ranking
from repro.personalize.profiles import UserProfile, UserProfileStore
from repro.personalize.upm import UPM, UPMConfig
from repro.topicmodels.corpus import build_corpus
from tests.personalize.test_upm import two_topic_log


@pytest.fixture(scope="module")
def store():
    log = two_topic_log()
    corpus = build_corpus(log, sessionize(log))
    model = UPM(UPMConfig(n_topics=2, iterations=30, seed=0)).fit(corpus)
    return UserProfileStore(model)


class TestUserProfile:
    def test_valid(self):
        profile = UserProfile("u", np.array([0.7, 0.3]))
        assert profile.dominant_topic == 0

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            UserProfile("u", np.array([0.5, 0.1]))
        with pytest.raises(ValueError):
            UserProfile("u", np.array([[0.5, 0.5]]))
        with pytest.raises(ValueError):
            UserProfile("u", np.array([]))


class TestUserProfileStore:
    def test_contains_all_users(self, store):
        assert len(store) == 8
        assert "u0" in store
        assert "ghost" not in store

    def test_profile_lookup(self, store):
        profile = store.profile("u0")
        assert profile.user_id == "u0"
        assert profile.theta.sum() == pytest.approx(1.0)
        with pytest.raises(KeyError):
            store.profile("ghost")

    def test_score_candidates(self, store):
        scores = store.score_candidates("u0", ["java jvm", "telescope orbit"])
        assert scores["java jvm"] > scores["telescope orbit"]

    def test_rank_candidates(self, store):
        ranking = store.rank_candidates(
            "u0", ["telescope orbit", "java jvm", "comet orbit"]
        )
        assert ranking[0] == "java jvm"

    def test_unknown_user_scores_zero(self, store):
        assert store.score("ghost", "java") == 0.0

    def test_user_ids_sorted_and_cached(self, store):
        ids = store.user_ids
        assert ids == sorted(ids)
        # The property returns a fresh list over one cached sort.
        assert store.user_ids == ids
        assert store.user_ids is not ids

    def test_batch_scores_match_per_query(self, store):
        candidates = ["java jvm", "telescope orbit", "java jvm", "unseen"]
        batch = store.score_candidates("u0", candidates)
        for query in candidates:
            assert batch[query] == store.score("u0", query)


class TestArrayProfileStore:
    @pytest.fixture(scope="class")
    def array_store(self, store):
        from repro.personalize.profiles import ArrayProfileStore

        return ArrayProfileStore(store.to_arrays())

    def test_bit_identical_to_model_backed_store(self, store, array_store):
        assert array_store.user_ids == store.user_ids
        queries = ["java jvm", "telescope orbit", "comet", "unseen", ""]
        for user_id in store.user_ids + ["ghost"]:
            for query in queries:
                assert array_store.score(user_id, query) == store.score(
                    user_id, query
                )

    def test_profiles_and_tau_round_trip(self, store, array_store):
        for user_id in store.user_ids:
            assert np.array_equal(
                array_store.profile(user_id).theta,
                store.profile(user_id).theta,
            )
            assert np.array_equal(
                array_store.user_tau(user_id),
                store.model.user_tau(user_id),
            )

    def test_rank_candidates_matches(self, store, array_store):
        candidates = ["telescope orbit", "java jvm", "comet orbit"]
        assert array_store.rank_candidates(
            "u0", candidates
        ) == store.rank_candidates("u0", candidates)


class TestPersonalizeRanking:
    def test_preference_promotes_candidate(self):
        diversified = ["a", "b", "c", "d"]
        # The user loves "d"; plain Borda should pull it up.
        scores = {"a": 0.1, "b": 0.1, "c": 0.1, "d": 0.9}
        final = personalize_ranking(diversified, scores)
        assert final.rank_of("d") < 3

    def test_zero_weight_keeps_diversified_order(self):
        diversified = ["a", "b", "c"]
        scores = {"a": 0.0, "b": 0.0, "c": 1.0}
        final = personalize_ranking(
            diversified, scores, personalization_weight=0.0
        )
        assert list(final) == diversified

    def test_large_weight_follows_preferences(self):
        diversified = ["a", "b", "c"]
        scores = {"a": 0.1, "b": 0.5, "c": 0.9}
        final = personalize_ranking(
            diversified, scores, personalization_weight=10.0
        )
        assert list(final) == ["c", "b", "a"]

    def test_missing_scores_treated_as_zero(self):
        final = personalize_ranking(["a", "b"], {"b": 1.0})
        assert set(final) == {"a", "b"}

    def test_empty_candidates(self):
        assert list(personalize_ranking([], {})) == []

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            personalize_ranking(["a"], {}, personalization_weight=-1.0)

    def test_same_set_preserved(self):
        diversified = ["a", "b", "c", "d", "e"]
        scores = {q: i / 10 for i, q in enumerate(diversified)}
        final = personalize_ranking(diversified, scores)
        assert sorted(final) == sorted(diversified)
