"""Tests for repro.personalize.upm (the User Profiling Model)."""

import numpy as np
import pytest

from repro.logs.schema import QueryRecord
from repro.logs.sessionizer import sessionize
from repro.logs.storage import QueryLog
from repro.personalize.upm import UPM, UPMConfig
from repro.topicmodels.corpus import build_corpus


def two_topic_log(sessions_per_user=6, users=8):
    """Synthetic mini-log with two crisp topics: java-land and star-land.

    Even users always search java topics and click java URLs early in time;
    odd users search astronomy late in time.
    """
    records = []
    java_words = ["java jvm", "java applet", "jvm servlet", "java jdk"]
    astro_words = ["telescope orbit", "comet orbit", "telescope nebula",
                   "orbit planet"]
    for u in range(users):
        for s in range(sessions_per_user):
            base = (u * sessions_per_user + s) * 10_000.0
            if u % 2 == 0:
                query = java_words[s % len(java_words)]
                url = "www.java.com"
                timestamp = base
            else:
                query = astro_words[s % len(astro_words)]
                url = "www.nasa.gov"
                timestamp = base + 500_000.0
            records.append(
                QueryRecord(f"u{u}", query, timestamp, clicked_url=url)
            )
    return QueryLog(records)


@pytest.fixture(scope="module")
def fitted():
    log = two_topic_log()
    corpus = build_corpus(log, sessionize(log))
    config = UPMConfig(n_topics=2, iterations=40, hyperopt_every=20, seed=0)
    return corpus, UPM(config).fit(corpus)


class TestUPMConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_topics": 0},
            {"alpha0": 0.0},
            {"beta0": -1.0},
            {"iterations": 0},
            {"hyperopt_every": -1},
            {"hyperopt_method": "adam"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            UPMConfig(**kwargs)


class TestFitting:
    def test_theta_is_distribution(self, fitted):
        _, model = fitted
        theta = model.theta
        assert theta.shape[1] == 2
        assert np.allclose(theta.sum(axis=1), 1.0)
        assert (theta >= 0).all()

    def test_two_topics_separate_users(self, fitted):
        corpus, model = fitted
        theta = model.theta
        java_users = [i for i, d in enumerate(corpus.documents)
                      if int(d.user_id[1:]) % 2 == 0]
        astro_users = [i for i, d in enumerate(corpus.documents)
                       if int(d.user_id[1:]) % 2 == 1]
        # All java users should peak on the same topic, astro on the other.
        java_topics = {int(theta[i].argmax()) for i in java_users}
        astro_topics = {int(theta[i].argmax()) for i in astro_users}
        assert len(java_topics) == 1
        assert len(astro_topics) == 1
        assert java_topics != astro_topics

    def test_sessions_share_one_topic(self, fitted):
        corpus, model = fitted
        # Session-level assignment: doc-topic counts are integers that sum
        # to the number of sessions.
        for i, doc in enumerate(corpus.documents):
            counts = model._doc_topic[i]
            assert counts.sum() == len(doc.sessions)

    def test_preference_score_tracks_user_topic(self, fitted):
        _, model = fitted
        java_score = model.preference_score("u0", "java jvm")
        astro_score = model.preference_score("u0", "telescope orbit")
        assert java_score > astro_score
        assert model.preference_score("u1", "telescope orbit") > (
            model.preference_score("u1", "java jvm")
        )

    def test_preference_score_edge_cases(self, fitted):
        _, model = fitted
        assert model.preference_score("ghost", "java") == 0.0
        assert model.preference_score("u0", "zzzz qqqq") == 0.0
        assert model.preference_score("u0", "") == 0.0

    def test_predictive_distribution_normalized(self, fitted):
        corpus, model = fitted
        for d in range(corpus.n_documents):
            predictive = model.predictive_word_distribution(d)
            assert predictive.shape == (corpus.n_words,)
            assert predictive.sum() == pytest.approx(1.0)
            assert (predictive >= 0).all()

    def test_tau_learned_reflects_time_split(self, fitted):
        corpus, model = fitted
        theta = model.theta
        # Identify the astro topic (dominant for u1).
        astro_topic = int(theta[corpus.doc_index["u1"]].argmax())
        java_topic = 1 - astro_topic
        tau = model.tau
        # Astro sessions happen late: mean a/(a+b) should be larger.
        astro_mean = tau[astro_topic, 0] / tau[astro_topic].sum()
        java_mean = tau[java_topic, 0] / tau[java_topic].sum()
        assert astro_mean > java_mean

    def test_deterministic_given_seed(self):
        log = two_topic_log(sessions_per_user=4, users=4)
        corpus = build_corpus(log, sessionize(log))
        config = UPMConfig(n_topics=2, iterations=15, seed=7)
        a = UPM(config).fit(corpus).theta
        b = UPM(config).fit(corpus).theta
        assert np.allclose(a, b)

    def test_unfitted_access_raises(self):
        model = UPM()
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = model.theta
        with pytest.raises(RuntimeError):
            model.preference_score("u", "q")

    def test_empty_corpus_rejected(self):
        log = QueryLog([])
        corpus = build_corpus(log, [])
        with pytest.raises(ValueError, match="no documents"):
            UPM().fit(corpus)


class TestAblationKnobs:
    def test_no_url_channel(self):
        log = two_topic_log(sessions_per_user=3, users=4)
        corpus = build_corpus(log, sessionize(log))
        config = UPMConfig(
            n_topics=2, iterations=10, use_urls=False, seed=0
        )
        model = UPM(config).fit(corpus)
        assert model.theta.shape == (4, 2)

    def test_no_time_channel(self):
        log = two_topic_log(sessions_per_user=3, users=4)
        corpus = build_corpus(log, sessionize(log))
        config = UPMConfig(
            n_topics=2, iterations=10, use_time=False, seed=0
        )
        model = UPM(config).fit(corpus)
        # tau must stay at its uninformative initial value.
        assert np.allclose(model.tau, 1.0)

    def test_hyperopt_disabled_keeps_priors(self):
        log = two_topic_log(sessions_per_user=3, users=4)
        corpus = build_corpus(log, sessionize(log))
        config = UPMConfig(
            n_topics=2, iterations=10, hyperopt_every=0, seed=0
        )
        model = UPM(config).fit(corpus)
        assert np.allclose(model.alpha, config.alpha0)
        assert np.allclose(model.beta, config.beta0)

    def test_lbfgs_method_runs(self):
        log = two_topic_log(sessions_per_user=3, users=4)
        corpus = build_corpus(log, sessionize(log))
        config = UPMConfig(
            n_topics=2,
            iterations=10,
            hyperopt_every=10,
            hyperopt_method="lbfgs",
            seed=0,
        )
        model = UPM(config).fit(corpus)
        # Hyperparameters moved away from the symmetric initialization.
        assert not np.allclose(model.beta, config.beta0)
