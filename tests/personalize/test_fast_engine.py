"""Tests for the UPM fast engine: bit-identity, fit stats, Beta moments.

The fast engine (vectorized kernel + process sharding) is required to be
**bit-identical** to the reference sampler — exact array equality, not
approximate — for any worker count.  That contract is what makes the
"fast" default safe: every qualitative result in the rest of the suite is
automatically a test of both engines.
"""

import numpy as np
import pytest

from repro.logs.sessionizer import sessionize
from repro.personalize.gibbs_fast import barrier_segments
from repro.personalize.upm import UPM, UPMConfig, fit_beta_moments
from repro.topicmodels.corpus import build_corpus
from tests.personalize.test_upm import two_topic_log


@pytest.fixture(scope="module")
def corpus():
    log = two_topic_log(sessions_per_user=6, users=8)
    return build_corpus(log, sessionize(log))


@pytest.fixture(scope="module")
def reference(corpus):
    return UPM(
        UPMConfig(
            n_topics=2, iterations=14, hyperopt_every=5, seed=3,
            engine="reference", n_workers=1,
        )
    ).fit(corpus)


class TestEngineConfig:
    def test_default_is_fast(self):
        assert UPMConfig().engine == "fast"

    def test_engine_validated(self):
        with pytest.raises(ValueError):
            UPMConfig(engine="turbo")


class TestBitIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 5])
    def test_fast_engine_exactly_equals_reference(
        self, corpus, reference, n_workers
    ):
        fast = UPM(
            UPMConfig(
                n_topics=2, iterations=14, hyperopt_every=5, seed=3,
                engine="fast", n_workers=n_workers,
            )
        ).fit(corpus)
        for a, b in zip(reference._assignments, fast._assignments):
            assert np.array_equal(a, b)
        assert np.array_equal(reference.theta, fast.theta)
        assert np.array_equal(reference.alpha, fast.alpha)
        assert np.array_equal(reference.beta, fast.beta)
        assert np.array_equal(reference.delta, fast.delta)
        assert np.array_equal(reference.tau, fast.tau)

    @pytest.mark.parametrize("n_workers", [2, 5])
    def test_log_likelihood_identical_across_workers(
        self, corpus, reference, n_workers
    ):
        # The observability channel must not depend on the worker count
        # either — per-document terms are summed in canonical order.
        fast = UPM(
            UPMConfig(
                n_topics=2, iterations=14, hyperopt_every=5, seed=3,
                engine="fast", n_workers=n_workers,
            )
        ).fit(corpus)
        assert (
            fast.fit_stats.sweep_log_likelihood
            == reference.fit_stats.sweep_log_likelihood
        )

    def test_ablations_identical(self, corpus):
        # The URL/time channels take different code paths in the kernel;
        # each ablation must match the reference too.
        for kwargs in (
            dict(use_urls=False),
            dict(use_time=False),
            dict(use_urls=False, use_time=False),
            dict(hyperopt_every=0),
        ):
            ref = UPM(
                UPMConfig(
                    n_topics=2, iterations=8, seed=1, engine="reference",
                    **kwargs,
                )
            ).fit(corpus)
            fast = UPM(
                UPMConfig(
                    n_topics=2, iterations=8, seed=1, engine="fast",
                    n_workers=2, **kwargs,
                )
            ).fit(corpus)
            assert np.array_equal(ref.theta, fast.theta), kwargs
            assert np.array_equal(ref.beta, fast.beta), kwargs
            assert np.array_equal(ref.tau, fast.tau), kwargs


class TestBarrierSegments:
    def test_splits_at_hyperopt_multiples(self):
        assert barrier_segments(60, 20) == [(1, 20), (21, 40), (41, 60)]

    def test_partial_tail_segment(self):
        assert barrier_segments(25, 10) == [(1, 10), (11, 20), (21, 25)]

    def test_no_hyperopt_is_one_segment(self):
        assert barrier_segments(30, 0) == [(1, 30)]

    def test_segments_cover_all_sweeps_exactly_once(self):
        for iterations, every in [(1, 1), (7, 3), (60, 20), (5, 100)]:
            segments = barrier_segments(iterations, every)
            sweeps = [
                s for start, stop in segments
                for s in range(start, stop + 1)
            ]
            assert sweeps == list(range(1, iterations + 1))


class TestFitBetaMoments:
    def test_fewer_than_two_observations_is_flat(self):
        assert fit_beta_moments(np.array([])) == (1.0, 1.0)
        assert fit_beta_moments(np.array([0.4])) == (1.0, 1.0)

    def test_zero_variance_is_concentrated_proper_fit(self):
        a, b = fit_beta_moments(np.array([0.3, 0.3, 0.3]))
        assert np.isfinite(a) and np.isfinite(b)
        assert a >= 1.0 and b >= 1.0
        # Variance floored at 1e-4 -> very concentrated around 0.3.
        assert a / (a + b) == pytest.approx(0.3, abs=1e-3)

    def test_non_positive_common_factor_is_flat(self):
        # Two-point mass at the interval ends: variance equals the Bernoulli
        # maximum, so t(1-t)/var - 1 <= 0 and the fit degenerates.
        assert fit_beta_moments(np.array([0.0, 1.0])) == (1.0, 1.0)

    def test_moments_recovered(self):
        rng = np.random.default_rng(0)
        values = rng.beta(6.0, 2.0, size=4000)
        a, b = fit_beta_moments(values)
        assert a / (a + b) == pytest.approx(values.mean(), abs=1e-6)
        assert a == pytest.approx(6.0, rel=0.15)
        assert b == pytest.approx(2.0, rel=0.15)

    def test_parameters_floored(self):
        # Wide spread inside (0, 1) -> tiny raw parameters; floored at 1.
        a, b = fit_beta_moments(np.array([0.02, 0.98, 0.03, 0.97]))
        assert a >= 1.0 and b >= 1.0

    def test_model_paths_share_the_helper(self, corpus):
        # user_tau and the global tau refit go through fit_beta_moments:
        # every produced pair respects its floor/degeneracy contract.
        model = UPM(
            UPMConfig(n_topics=2, iterations=10, hyperopt_every=5, seed=0)
        ).fit(corpus)
        assert (model.tau >= 1.0).all()
        for user in ("u0", "u1"):
            assert (model.user_tau(user) >= 1.0).all()


class TestFitStats:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            UPM().fit_stats

    def test_shapes_and_metadata(self, reference):
        stats = reference.fit_stats
        assert stats.engine == "reference"
        assert stats.n_workers == 1
        assert stats.n_sweeps == 14
        assert len(stats.sweep_seconds) == 14
        assert all(s >= 0 for s in stats.sweep_seconds)
        assert stats.total_seconds >= sum(stats.sweep_seconds) * 0.5
        assert stats.mean_sweep_seconds > 0

    def test_log_likelihood_improves(self, corpus):
        # Monotone-ish: the chain's pseudo-log-likelihood is noisy sweep to
        # sweep but must clearly rise from the random initialization on a
        # separable corpus.
        model = UPM(
            UPMConfig(n_topics=2, iterations=30, hyperopt_every=10, seed=0)
        ).fit(corpus)
        lls = model.fit_stats.sweep_log_likelihood
        assert np.mean(lls[-10:]) > np.mean(lls[:5])
        assert all(np.isfinite(v) for v in lls)


class TestTopicWordMemoization:
    def test_repeated_calls_return_cached_array(self, corpus):
        model = UPM(UPMConfig(n_topics=2, iterations=5, seed=0)).fit(corpus)
        first = model.topic_word_distribution(0)
        assert model.topic_word_distribution(0) is first

    def test_refit_invalidates_cache(self, corpus):
        model = UPM(UPMConfig(n_topics=2, iterations=5, seed=0)).fit(corpus)
        before = model.topic_word_distribution(0)
        model.fit(corpus)
        assert model.topic_word_distribution(0) is not before

    def test_scores_unchanged_by_caching(self, corpus):
        model = UPM(UPMConfig(n_topics=2, iterations=5, seed=0)).fit(corpus)
        cold = model.preference_score("u0", "java jvm")
        warm = model.preference_score("u0", "java jvm")
        assert cold == warm > 0
