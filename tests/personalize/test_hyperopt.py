"""Tests for repro.personalize.hyperopt (Eqs. 25-27)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.personalize.hyperopt import (
    dirichlet_log_likelihood,
    dirichlet_log_likelihood_gradient,
    optimize_dirichlet_fixed_point,
    optimize_dirichlet_lbfgs,
)


def sample_counts(seed=0, docs=30, items=6, concentration=None):
    rng = np.random.default_rng(seed)
    if concentration is None:
        concentration = np.array([5.0, 2.0, 1.0, 0.5, 0.5, 0.2])[:items]
    counts = np.zeros((docs, items))
    for d in range(docs):
        theta = rng.dirichlet(concentration)
        counts[d] = rng.multinomial(40, theta)
    return counts, concentration


class TestLogLikelihood:
    def test_matches_manual_small_case(self):
        counts = np.array([[2.0, 1.0]])
        eta = np.array([1.0, 1.0])
        # DM evidence with uniform Dirichlet(1,1) over 3 trials:
        # Gamma(3)Gamma(2)/... manual: lnB(counts+eta) - lnB(eta) form.
        from scipy.special import gammaln

        expected = (
            gammaln(2 + 1)
            + gammaln(1 + 1)
            - gammaln(1.0) * 2
            + gammaln(2.0)
            - gammaln(3 + 2)
        )
        assert dirichlet_log_likelihood(counts, eta) == pytest.approx(expected)

    def test_gradient_matches_finite_differences(self):
        counts, _ = sample_counts(seed=1, docs=10)
        eta = np.array([1.0, 0.8, 1.2, 0.5, 2.0, 0.3])
        grad = dirichlet_log_likelihood_gradient(counts, eta)
        eps = 1e-6
        for j in range(eta.size):
            bumped = eta.copy()
            bumped[j] += eps
            numeric = (
                dirichlet_log_likelihood(counts, bumped)
                - dirichlet_log_likelihood(counts, eta)
            ) / eps
            assert grad[j] == pytest.approx(numeric, rel=1e-3, abs=1e-3)

    @pytest.mark.parametrize(
        "counts,eta",
        [
            (np.zeros((2, 3)), np.array([1.0, 1.0])),  # shape mismatch
            (np.zeros(3), np.ones(3)),  # 1-D counts
            (np.zeros((2, 2)), np.array([0.0, 1.0])),  # non-positive eta
            (-np.ones((2, 2)), np.ones(2)),  # negative counts
        ],
    )
    def test_validation(self, counts, eta):
        with pytest.raises(ValueError):
            dirichlet_log_likelihood(counts, eta)


class TestOptimizers:
    @pytest.mark.parametrize(
        "optimize",
        [optimize_dirichlet_lbfgs, optimize_dirichlet_fixed_point],
    )
    def test_improves_likelihood(self, optimize):
        counts, _ = sample_counts(seed=2)
        eta0 = np.ones(counts.shape[1])
        eta = optimize(counts, eta0)
        assert dirichlet_log_likelihood(counts, eta) >= (
            dirichlet_log_likelihood(counts, eta0) - 1e-9
        )

    @pytest.mark.parametrize(
        "optimize",
        [optimize_dirichlet_lbfgs, optimize_dirichlet_fixed_point],
    )
    def test_recovers_asymmetry(self, optimize):
        # True concentration is heavily skewed toward item 0.
        counts, truth = sample_counts(seed=3, docs=200)
        eta = optimize(counts, np.ones(counts.shape[1]))
        assert eta.argmax() == truth.argmax()
        assert eta[0] > eta[-1]

    @pytest.mark.parametrize(
        "optimize",
        [optimize_dirichlet_lbfgs, optimize_dirichlet_fixed_point],
    )
    def test_output_positive(self, optimize):
        counts, _ = sample_counts(seed=4)
        eta = optimize(counts, np.full(counts.shape[1], 0.01))
        assert (eta > 0).all()

    def test_lbfgs_close_to_fixed_point(self):
        counts, _ = sample_counts(seed=5, docs=100)
        eta0 = np.ones(counts.shape[1])
        a = optimize_dirichlet_lbfgs(counts, eta0)
        b = optimize_dirichlet_fixed_point(counts, eta0, max_iterations=500)
        lla = dirichlet_log_likelihood(counts, a)
        llb = dirichlet_log_likelihood(counts, b)
        assert lla == pytest.approx(llb, rel=1e-3)

    def test_zero_count_matrix_is_stable(self):
        counts = np.zeros((5, 4))
        eta = optimize_dirichlet_fixed_point(counts, np.ones(4))
        assert (eta > 0).all()

    def test_fixed_point_matches_lbfgs_for_large_eta(self):
        # Regression: with the absolute-only stopping rule, strongly
        # concentrated evidence (optimal eta components in the tens) left
        # the fixed-point iteration running out its budget while the
        # components still drifted by more than 1e-6 per step.  The mixed
        # absolute/relative criterion converges; the optimum must agree
        # with L-BFGS on the shared fixture.
        counts, _ = sample_counts(
            seed=11, docs=150,
            concentration=np.array([60.0, 45.0, 30.0, 25.0, 20.0, 15.0]),
        )
        eta0 = np.ones(counts.shape[1])
        a = optimize_dirichlet_lbfgs(counts, eta0, max_iterations=200)
        b = optimize_dirichlet_fixed_point(counts, eta0, max_iterations=500)
        assert (b > 5.0).any()  # the fixture really is in the large regime
        lla = dirichlet_log_likelihood(counts, a)
        llb = dirichlet_log_likelihood(counts, b)
        assert llb == pytest.approx(lla, rel=1e-4)


def _explicit_zero_csr(dense: np.ndarray) -> sparse.csr_matrix:
    """A CSR storing *every* cell of *dense*, zeros included."""
    docs, items = dense.shape
    matrix = sparse.csr_matrix(
        (
            dense.ravel().astype(float),
            np.tile(np.arange(items), docs),
            np.arange(0, docs * items + 1, items),
        ),
        shape=(docs, items),
    )
    assert matrix.nnz == dense.size
    return matrix


class TestSparseCounts:
    """The sparse path must agree with the dense one (zero cells contribute
    exactly nothing to the evidence and its gradient)."""

    @pytest.fixture()
    def dense(self):
        counts, _ = sample_counts(seed=7, docs=40)
        counts[counts < 3] = 0.0  # make it actually sparse
        return counts

    def test_log_likelihood_matches_dense(self, dense):
        value = dirichlet_log_likelihood(
            sparse.csr_matrix(dense), np.array([1.0, 0.5, 2.0, 0.3, 1.5, 0.7])
        )
        expected = dirichlet_log_likelihood(
            dense, np.array([1.0, 0.5, 2.0, 0.3, 1.5, 0.7])
        )
        assert value == pytest.approx(expected, rel=1e-12)

    def test_gradient_matches_dense(self, dense):
        eta = np.array([1.0, 0.5, 2.0, 0.3, 1.5, 0.7])
        got = dirichlet_log_likelihood_gradient(sparse.csr_matrix(dense), eta)
        expected = dirichlet_log_likelihood_gradient(dense, eta)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_explicit_stored_zeros_are_harmless(self, dense):
        # The UPM ships CSR matrices whose sparsity pattern is each user's
        # local vocabulary — cells can be structurally present but zero.
        eta = np.array([1.0, 0.5, 2.0, 0.3, 1.5, 0.7])
        pruned = sparse.csr_matrix(dense)
        padded = _explicit_zero_csr(dense)
        assert dirichlet_log_likelihood(padded, eta) == pytest.approx(
            dirichlet_log_likelihood(pruned, eta), rel=1e-12
        )
        np.testing.assert_allclose(
            dirichlet_log_likelihood_gradient(padded, eta),
            dirichlet_log_likelihood_gradient(pruned, eta),
            rtol=1e-12,
        )

    @pytest.mark.parametrize(
        "optimize",
        [optimize_dirichlet_lbfgs, optimize_dirichlet_fixed_point],
    )
    def test_optimizers_match_dense(self, dense, optimize):
        eta0 = np.ones(dense.shape[1])
        np.testing.assert_allclose(
            optimize(sparse.csr_matrix(dense), eta0),
            optimize(dense, eta0),
            rtol=1e-8,
        )

    def test_sparse_validation(self):
        bad = sparse.csr_matrix(np.array([[1.0, -2.0], [0.0, 1.0]]))
        with pytest.raises(ValueError):
            dirichlet_log_likelihood(bad, np.ones(2))
        good = sparse.csr_matrix(np.ones((2, 2)))
        with pytest.raises(ValueError):
            dirichlet_log_likelihood(good, np.ones(3))  # shape mismatch


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_likelihood_finite_for_random_counts(seed):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 30, size=(8, 5)).astype(float)
    eta = rng.uniform(0.01, 5.0, size=5)
    value = dirichlet_log_likelihood(counts, eta)
    assert np.isfinite(value)
