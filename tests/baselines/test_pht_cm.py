"""Tests for repro.baselines.pht (PHT) and repro.baselines.concept_based (CM)."""

import pytest

from repro.baselines.concept_based import ConceptBasedSuggester
from repro.baselines.pht import PersonalizedHittingTimeSuggester
from repro.graphs.click_graph import build_click_graph
from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog


def ambiguous_log():
    """Two users, one ambiguous query 'sun', opposite facets.

    user_java clicks java URLs; user_astro clicks astronomy URLs.  Several
    queries per facet give the graph enough structure for personalization.
    """
    rows = [
        # user_java history
        ("user_java", "java jvm", "www.java.com", 0),
        ("user_java", "java applet", "www.java.com", 100),
        ("user_java", "sun", "www.java.com", 200),
        # user_astro history
        ("user_astro", "telescope orbit", "www.nasa.gov", 300),
        ("user_astro", "comet nebula", "www.nasa.gov", 400),
        ("user_astro", "sun", "www.nasa.gov", 500),
        # extra connectivity
        ("user_misc", "java jdk", "www.java.com", 600),
        ("user_misc", "orbit planet", "www.nasa.gov", 700),
    ]
    return QueryLog(
        QueryRecord(u, q, float(t), clicked_url=url) for u, q, url, t in rows
    )


@pytest.fixture
def log():
    return ambiguous_log()


@pytest.fixture
def graph(log):
    return build_click_graph(log, weighted=False)


class TestPHT:
    def test_personalization_changes_ranking(self, graph, log):
        pht = PersonalizedHittingTimeSuggester(graph, log)
        java_view = pht.suggest("sun", k=6, user_id="user_java")
        astro_view = pht.suggest("sun", k=6, user_id="user_astro")
        assert java_view != astro_view

    def test_user_history_pulls_own_facet_first(self, graph, log):
        pht = PersonalizedHittingTimeSuggester(graph, log)
        java_view = pht.suggest("sun", k=6, user_id="user_java")
        astro_view = pht.suggest("sun", k=6, user_id="user_astro")
        java_queries = {"java jvm", "java applet", "java jdk"}
        astro_queries = {"telescope orbit", "comet nebula", "orbit planet"}
        assert java_view[0] in java_queries
        assert astro_view[0] in astro_queries

    def test_anonymous_user_still_works(self, graph, log):
        pht = PersonalizedHittingTimeSuggester(graph, log)
        suggestions = pht.suggest("sun", k=6)
        assert suggestions
        assert "sun" not in suggestions

    def test_unknown_query_empty(self, graph, log):
        pht = PersonalizedHittingTimeSuggester(graph, log)
        assert pht.suggest("ghost", user_id="user_java") == []

    def test_unknown_user_falls_back_to_query_edges(self, graph, log):
        pht = PersonalizedHittingTimeSuggester(graph, log)
        assert pht.suggest("sun", k=3, user_id="nobody")

    def test_invalid_args(self, graph, log):
        with pytest.raises(ValueError):
            PersonalizedHittingTimeSuggester(graph, log, iterations=0)
        with pytest.raises(ValueError):
            PersonalizedHittingTimeSuggester(graph, log, history_weight=-1)

    def test_name(self, graph, log):
        assert PersonalizedHittingTimeSuggester(graph, log).name == "PHT"


class TestCM:
    def test_cluster_mates_suggested(self, log):
        cm = ConceptBasedSuggester(log)
        suggestions = cm.suggest("java jvm", k=5)
        assert "java applet" in suggestions or "java jdk" in suggestions

    def test_personalized_ranking_differs_between_users(self, log):
        cm = ConceptBasedSuggester(log)
        java_view = cm.suggest("sun", k=6, user_id="user_java")
        astro_view = cm.suggest("sun", k=6, user_id="user_astro")
        if java_view and astro_view:
            assert java_view != astro_view

    def test_never_suggests_input(self, log):
        cm = ConceptBasedSuggester(log)
        assert "sun" not in cm.suggest("sun", k=10)

    def test_unknown_query_empty(self, log):
        assert ConceptBasedSuggester(log).suggest("ghost") == []

    def test_clusters_formed(self, log):
        cm = ConceptBasedSuggester(log)
        assert cm.cluster_of("java jvm") == cm.cluster_of("java applet")
        assert cm.cluster_of("ghost") is None

    def test_ambiguous_bridge_merges_facets(self, log):
        # Single-link clustering is transitive: "sun" (clicked in both
        # facets) bridges java-land and astro-land into one cluster — the
        # known weakness of CM that diversification methods avoid.
        cm = ConceptBasedSuggester(log)
        assert cm.cluster_of("java jvm") == cm.cluster_of("telescope orbit")

    def test_cross_facet_queries_separate_without_bridge(self):
        rows = [
            ("a", "java jvm", "www.java.com", 0),
            ("a", "java applet", "www.java.com", 100),
            ("b", "telescope orbit", "www.nasa.gov", 200),
            ("b", "comet nebula", "www.nasa.gov", 300),
        ]
        log = QueryLog(
            QueryRecord(u, q, float(t), clicked_url=url)
            for u, q, url, t in rows
        )
        cm = ConceptBasedSuggester(log)
        assert cm.n_clusters >= 2
        assert cm.cluster_of("java jvm") != cm.cluster_of("telescope orbit")

    def test_invalid_args(self, log):
        with pytest.raises(ValueError):
            ConceptBasedSuggester(log, similarity_threshold=0.0)
        with pytest.raises(ValueError):
            ConceptBasedSuggester(log, url_concept_weight=-1)

    def test_name(self, log):
        assert ConceptBasedSuggester(log).name == "CM"


class TestRegistry:
    def test_all_names_buildable(self, log):
        from repro.baselines.registry import baseline_names, build_baseline

        for name in baseline_names():
            suggester = build_baseline(name, log)
            assert suggester.name == name

    def test_filters(self):
        from repro.baselines.registry import baseline_names

        assert baseline_names(personalized=True) == ["PHT", "CM"]
        assert baseline_names(personalized=False) == ["FRW", "BRW", "HT", "DQS"]
        assert len(baseline_names()) == 6

    def test_unknown_name(self, log):
        from repro.baselines.registry import build_baseline

        with pytest.raises(KeyError):
            build_baseline("NOPE", log)
