"""Tests for repro.baselines.context_aware (CACB, Cao et al. 2008)."""

import pytest

from repro.baselines.context_aware import ContextAwareSuggester
from repro.logs.schema import QueryRecord
from repro.logs.sessionizer import sessionize
from repro.logs.storage import QueryLog


def sequential_log():
    """Users consistently follow concept A (java) with concept B (download).

    Several users issue a java query then a download query in the same
    session; the suffix tree must learn the A->B transition.  Concept C
    (astronomy) never follows A.
    """
    rows = []
    a = [("java jvm", "www.java.com"), ("java sdk", "www.java.com")]
    b = [("jvm download", "download.com"), ("sdk download", "download.com")]
    c = [("telescope orbit", "www.nasa.gov"), ("comet orbit", "www.nasa.gov")]
    t = 0.0
    for u in range(6):
        # Session: A then B.
        qa, ua = a[u % 2]
        qb, ub = b[u % 2]
        rows.append(QueryRecord(f"u{u}", qa, t, clicked_url=ua))
        rows.append(QueryRecord(f"u{u}", qb, t + 60, clicked_url=ub))
        t += 10_000
        # Separate astronomy session.
        qc, uc = c[u % 2]
        rows.append(QueryRecord(f"u{u}", qc, t, clicked_url=uc))
        t += 10_000
    return QueryLog(rows)


@pytest.fixture(scope="module")
def suggester():
    log = sequential_log()
    sessions = sessionize(log)
    return ContextAwareSuggester(log, sessions)


class TestConceptMining:
    def test_concepts_formed(self, suggester):
        # java / download / astronomy concepts at minimum.
        assert suggester.n_concepts >= 3

    def test_tree_built(self, suggester):
        assert suggester.n_tree_nodes >= 1


class TestSuggest:
    def test_predicts_next_concept(self, suggester):
        # After a java query, the mined sequences say "download" follows.
        suggestions = suggester.suggest("java jvm", k=4)
        assert suggestions
        assert any("download" in s for s in suggestions)

    def test_context_sharpens_prediction(self, suggester):
        context = [QueryRecord("u0", "java jvm", 0.0)]
        suggestions = suggester.suggest(
            "java sdk", k=4, context=context, timestamp=60.0
        )
        assert any("download" in s for s in suggestions)

    def test_never_suggests_history(self, suggester):
        context = [QueryRecord("u0", "java jvm", 0.0)]
        suggestions = suggester.suggest("java sdk", k=10, context=context)
        assert "java jvm" not in suggestions
        assert "java sdk" not in suggestions

    def test_backoff_to_own_concept(self, suggester):
        # Astronomy never precedes anything in the tree; fall back to the
        # astronomy concept's own queries.
        suggestions = suggester.suggest("telescope orbit", k=4)
        assert "comet orbit" in suggestions

    def test_unknown_query_empty(self, suggester):
        assert suggester.suggest("zzzz qqqq") == []

    def test_k_respected(self, suggester):
        assert len(suggester.suggest("java jvm", k=1)) == 1

    def test_deterministic(self, suggester):
        assert suggester.suggest("java jvm", k=5) == suggester.suggest(
            "java jvm", k=5
        )


class TestValidation:
    def test_invalid_args(self):
        log = sequential_log()
        sessions = sessionize(log)
        with pytest.raises(ValueError):
            ContextAwareSuggester(log, sessions, similarity_threshold=0.0)
        with pytest.raises(ValueError):
            ContextAwareSuggester(log, sessions, max_suffix=0)
        with pytest.raises(ValueError):
            ContextAwareSuggester(log, sessions, queries_per_concept=0)

    def test_works_on_synthetic_log(self):
        from repro.synth.generator import GeneratorConfig, generate_log
        from repro.synth.world import make_world

        world = make_world(seed=0)
        synthetic = generate_log(world, GeneratorConfig(n_users=15, seed=3))
        suggester = ContextAwareSuggester(
            synthetic.log, synthetic.sessions
        )
        answered = sum(
            1
            for record in synthetic.log[:30]
            if suggester.suggest(record.query, k=5)
        )
        assert answered > 0
