"""Tests for repro.baselines.hitting (HT) and repro.baselines.dqs (DQS)."""

import pytest

from repro.baselines.dqs import DQSSuggester
from repro.baselines.hitting import HittingTimeSuggester
from repro.graphs.click_graph import build_click_graph
from repro.logs.sessionizer import sessionize
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture
def graph(table1_log):
    return build_click_graph(table1_log, weighted=False)


@pytest.fixture(scope="module")
def big_graph():
    world = make_world(seed=0)
    synthetic = generate_log(world, GeneratorConfig(n_users=30, seed=2))
    return build_click_graph(synthetic.log, weighted=True)


class TestHittingTime:
    def test_connected_neighbors_suggested(self, graph):
        ht = HittingTimeSuggester(graph)
        assert "java" in ht.suggest("sun", k=5)

    def test_unreachable_excluded(self, graph):
        ht = HittingTimeSuggester(graph)
        suggestions = ht.suggest("sun", k=10)
        # "solar cell" has no URL path to "sun".
        assert "solar cell" not in suggestions

    def test_never_suggests_input(self, graph):
        ht = HittingTimeSuggester(graph)
        assert "sun" not in ht.suggest("sun", k=10)

    def test_unknown_query_empty(self, graph):
        assert HittingTimeSuggester(graph).suggest("ghost") == []

    def test_closer_queries_rank_earlier(self, big_graph):
        ht = HittingTimeSuggester(big_graph)
        seed = big_graph.queries[0]
        suggestions = ht.suggest(seed, k=10)
        if len(suggestions) >= 2:
            # First suggestion shares a URL directly with the input.
            assert suggestions[0] in big_graph.neighbors(seed) or suggestions
        assert len(suggestions) <= 10

    def test_invalid_iterations(self, graph):
        with pytest.raises(ValueError):
            HittingTimeSuggester(graph, iterations=0)

    def test_name(self, graph):
        assert HittingTimeSuggester(graph).name == "HT"


class TestDQS:
    def test_first_is_most_relevant(self, big_graph):
        dqs = DQSSuggester(big_graph)
        seed = big_graph.queries[0]
        from repro.baselines.random_walk import ForwardRandomWalkSuggester

        frw = ForwardRandomWalkSuggester(big_graph)
        frw_top = frw.suggest(seed, k=1)
        dqs_top = dqs.suggest(seed, k=5)
        if frw_top and dqs_top:
            assert dqs_top[0] == frw_top[0]

    def test_never_suggests_input(self, big_graph):
        dqs = DQSSuggester(big_graph)
        seed = big_graph.queries[3]
        assert seed not in dqs.suggest(seed, k=10)

    def test_no_duplicates(self, big_graph):
        dqs = DQSSuggester(big_graph)
        seed = big_graph.queries[3]
        suggestions = dqs.suggest(seed, k=10)
        assert len(set(suggestions)) == len(suggestions)

    def test_tail_differs_from_pure_relevance(self, big_graph):
        from repro.baselines.random_walk import ForwardRandomWalkSuggester

        frw = ForwardRandomWalkSuggester(big_graph)
        dqs = DQSSuggester(big_graph)
        differing = 0
        for seed in big_graph.queries[:20]:
            a = frw.suggest(seed, k=8)
            b = dqs.suggest(seed, k=8)
            if len(b) >= 4 and a != b:
                differing += 1
        assert differing > 0  # diversification reorders at least sometimes

    def test_unknown_query_empty(self, big_graph):
        assert DQSSuggester(big_graph).suggest("ghost") == []

    def test_invalid_args(self, big_graph):
        with pytest.raises(ValueError):
            DQSSuggester(big_graph, pool_size=0)
        with pytest.raises(ValueError):
            DQSSuggester(big_graph, hitting_iterations=0)

    def test_deterministic(self, big_graph):
        dqs = DQSSuggester(big_graph)
        seed = big_graph.queries[5]
        assert dqs.suggest(seed, k=8) == dqs.suggest(seed, k=8)
