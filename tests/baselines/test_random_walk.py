"""Tests for repro.baselines.random_walk (FRW, BRW)."""

import pytest

from repro.baselines.random_walk import (
    BackwardRandomWalkSuggester,
    ForwardRandomWalkSuggester,
)
from repro.graphs.click_graph import build_click_graph


@pytest.fixture
def graph(table1_log):
    return build_click_graph(table1_log, weighted=False)


class TestForwardRandomWalk:
    def test_suggests_click_neighbors(self, graph):
        frw = ForwardRandomWalkSuggester(graph)
        suggestions = frw.suggest("sun", k=5)
        assert "java" in suggestions

    def test_never_suggests_input(self, graph):
        frw = ForwardRandomWalkSuggester(graph)
        assert "sun" not in frw.suggest("sun", k=10)

    def test_unknown_query_empty(self, graph):
        frw = ForwardRandomWalkSuggester(graph)
        assert frw.suggest("never seen") == []

    def test_noclick_query_empty(self, graph):
        frw = ForwardRandomWalkSuggester(graph)
        assert frw.suggest("jvm download") == []

    def test_k_respected(self, graph):
        frw = ForwardRandomWalkSuggester(graph)
        assert len(frw.suggest("sun", k=1)) == 1

    def test_zero_score_queries_excluded(self, graph):
        frw = ForwardRandomWalkSuggester(graph, steps=1)
        suggestions = frw.suggest("sun", k=10)
        # "solar cell" shares no URL path with "sun" (u2 clicked different
        # URLs for each query).
        assert "solar cell" not in suggestions

    def test_invalid_args(self, graph):
        with pytest.raises(ValueError):
            ForwardRandomWalkSuggester(graph, steps=0)
        with pytest.raises(ValueError):
            ForwardRandomWalkSuggester(graph, self_transition=1.0)

    def test_scores_distribution(self, graph):
        frw = ForwardRandomWalkSuggester(graph)
        scores = frw.scores("sun")
        assert scores is not None
        assert scores.sum() == pytest.approx(1.0)
        assert frw.scores("ghost") is None

    def test_name(self, graph):
        assert ForwardRandomWalkSuggester(graph).name == "FRW"


class TestBackwardRandomWalk:
    def test_suggests_related(self, graph):
        brw = BackwardRandomWalkSuggester(graph)
        assert "java" in brw.suggest("sun", k=5)

    def test_differs_from_forward_on_asymmetric_graph(self, table1_log):
        # Weighted graph makes transition asymmetric enough to reorder.
        graph = build_click_graph(table1_log, weighted=True)
        frw = ForwardRandomWalkSuggester(graph).scores("sun")
        brw = BackwardRandomWalkSuggester(graph).scores("sun")
        assert frw is not None and brw is not None
        assert not (abs(frw - brw) < 1e-12).all()

    def test_name(self, graph):
        assert BackwardRandomWalkSuggester(graph).name == "BRW"

    def test_deterministic(self, graph):
        brw = BackwardRandomWalkSuggester(graph)
        assert brw.suggest("sun", k=5) == brw.suggest("sun", k=5)
