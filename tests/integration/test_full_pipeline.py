"""End-to-end integration tests across subsystem boundaries."""

import io

import pytest

from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.eval.diversity import DiversityMetric
from repro.eval.harness import evaluate_personalized, split_train_test
from repro.eval.ppr import PPRMetric
from repro.graphs.compact import CompactConfig
from repro.logs.aol import read_aol, write_aol
from repro.logs.cleaning import clean_log
from repro.logs.sessionizer import sessionize
from repro.personalize.upm import UPMConfig
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.oracle import Oracle
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def world():
    return make_world(seed=0)


@pytest.fixture(scope="module")
def synthetic(world):
    return generate_log(
        world,
        GeneratorConfig(
            n_users=30,
            mean_sessions_per_user=10,
            hub_click_probability=0.1,
            seed=31,
        ),
    )


class TestAolRoundTripPipeline:
    def test_export_import_clean_build_suggest(self, synthetic):
        # Export to the AOL TSV format and re-import.
        buffer = io.StringIO()
        write_aol(synthetic.log, buffer)
        buffer.seek(0)
        log = read_aol(buffer)
        assert len(log) == len(synthetic.log)

        # Clean, sessionize, build and suggest — the examples/aol_pipeline
        # flow, asserted.
        cleaned, report = clean_log(log)
        assert report.output_records > 0
        sessions = sessionize(cleaned)
        assert sessions
        suggester = PQSDA.build(
            cleaned,
            sessions=sessions,
            config=PQSDAConfig(
                personalize=False, compact=CompactConfig(size=80)
            ),
        )
        probe = max(cleaned.unique_queries, key=cleaned.query_frequency)
        suggestions = suggester.suggest(probe, k=10)
        assert suggestions
        assert probe not in suggestions

    def test_roundtrip_preserves_suggestions(self, synthetic):
        config = PQSDAConfig(personalize=False, compact=CompactConfig(size=80))
        direct = PQSDA.build(
            synthetic.log, sessions=synthetic.sessions, config=config
        )
        buffer = io.StringIO()
        write_aol(synthetic.log, buffer)
        buffer.seek(0)
        roundtripped = PQSDA.build(read_aol(buffer), config=config)
        probe = max(
            synthetic.log.unique_queries, key=synthetic.log.query_frequency
        )
        # Sessions are re-derived (ground truth vs sessionizer), so lists
        # may differ in tail order but must heavily overlap at the top.
        a = set(direct.suggest(probe, k=10))
        b = set(roundtripped.suggest(probe, k=10))
        assert a and b
        assert len(a & b) >= 3


class TestPersonalizationImproves:
    def test_personalized_beats_anonymous_on_ppr(self, world, synthetic):
        split = split_train_test(synthetic, n_test_sessions=3)
        ppr = PPRMetric(world.web)
        config = PQSDAConfig(
            compact=CompactConfig(size=120),
            diversify=DiversifyConfig(k=10, candidate_pool=25),
            upm=UPMConfig(n_topics=8, iterations=25, seed=0),
            personalization_weight=2.0,
        )
        personalized = PQSDA.build(
            split.train_log, sessions=split.train_sessions, config=config
        )

        class _Anonymous:
            name = "anon"

            def suggest(self, query, k=10, user_id=None, context=(),
                        timestamp=0.0):
                return personalized.suggest(query, k=k, user_id=None)

        with_profiles = evaluate_personalized(
            personalized, split.test_sessions, ks=[5], ppr=ppr
        )
        without = evaluate_personalized(
            _Anonymous(), split.test_sessions, ks=[5], ppr=ppr
        )
        assert with_profiles["ppr"][5] >= without["ppr"][5] - 1e-9

    def test_diversity_survives_personalization(self, world, synthetic):
        split = split_train_test(synthetic, n_test_sessions=2)
        oracle = Oracle(world, synthetic)
        diversity = DiversityMetric(synthetic.log, oracle)
        config = PQSDAConfig(
            compact=CompactConfig(size=120),
            diversify=DiversifyConfig(k=10, candidate_pool=25),
            upm=UPMConfig(n_topics=8, iterations=25, seed=0),
        )
        suggester = PQSDA.build(
            split.train_log, sessions=split.train_sessions, config=config
        )
        result = evaluate_personalized(
            suggester, split.test_sessions, ks=[10], diversity=diversity
        )
        # Personalization reorders but never drops candidates; the final
        # lists keep substantial facet coverage.
        assert result["diversity"][10] > 0.3


class TestDeterminismEndToEnd:
    def test_full_pipeline_reproducible(self, world):
        def run():
            synthetic = generate_log(
                world, GeneratorConfig(n_users=10, seed=77)
            )
            suggester = PQSDA.build(
                synthetic.log,
                sessions=synthetic.sessions,
                config=PQSDAConfig(
                    compact=CompactConfig(size=60),
                    upm=UPMConfig(n_topics=4, iterations=10, seed=1),
                ),
            )
            probe = synthetic.log[0].query
            return [
                suggester.suggest(probe, k=6, user_id=u)
                for u in synthetic.log.users[:3]
            ]

        assert run() == run()


class TestNoClickLog:
    def test_pipeline_works_without_any_clicks(self, world):
        synthetic = generate_log(
            world,
            GeneratorConfig(n_users=10, click_probability=0.0, seed=5),
        )
        assert all(not r.has_click for r in synthetic.log)
        suggester = PQSDA.build(
            synthetic.log,
            sessions=synthetic.sessions,
            config=PQSDAConfig(
                personalize=False, compact=CompactConfig(size=60)
            ),
        )
        probe = synthetic.log[0].query
        # Session and term bipartites carry the suggestion alone — the
        # multi-bipartite robustness claim of Sec. III.
        assert suggester.suggest(probe, k=5)
