"""Property-based invariants over randomly generated mini-logs.

Hypothesis drives small random query logs through the representation and
diversification layers, asserting the structural invariants every layer
must hold regardless of input shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diversify.candidates import DiversifyConfig, diversify
from repro.diversify.hitting_time import truncated_hitting_times
from repro.graphs.matrices import build_matrices
from repro.graphs.multibipartite import BIPARTITE_KINDS, build_multibipartite
from repro.graphs.weighting import apply_cfiqf
from repro.logs.schema import QueryRecord
from repro.logs.sessionizer import sessionize
from repro.logs.storage import QueryLog

_WORDS = ["sun", "java", "moon", "solar", "jvm", "cell", "news", "orbit"]
_URLS = ["www.a.com", "www.b.com", "www.c.com", None]


@st.composite
def mini_logs(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    records = []
    for i in range(n):
        user = draw(st.sampled_from(["u1", "u2", "u3"]))
        n_terms = draw(st.integers(min_value=1, max_value=3))
        words = draw(
            st.lists(
                st.sampled_from(_WORDS), min_size=n_terms, max_size=n_terms
            )
        )
        url = draw(st.sampled_from(_URLS))
        gap = draw(st.sampled_from([30.0, 300.0, 4000.0]))
        records.append(
            QueryRecord(
                user_id=user,
                query=" ".join(words),
                timestamp=i * gap,
                clicked_url=url,
            )
        )
    return QueryLog(records)


@settings(max_examples=30, deadline=None)
@given(mini_logs())
def test_sessionize_partitions_any_log(log):
    sessions = sessionize(log)
    ids = sorted(r.record_id for s in sessions for r in s)
    assert ids == list(range(len(log)))
    for session in sessions:
        stamps = [r.timestamp for r in session]
        assert stamps == sorted(stamps)
        assert len({r.user_id for r in session}) == 1


@settings(max_examples=30, deadline=None)
@given(mini_logs(), st.booleans())
def test_multibipartite_structure_any_log(log, weighted):
    mb = build_multibipartite(log, sessionize(log), weighted=weighted)
    # Every record's normalized query is a node.
    from repro.utils.text import normalize_query, tokenize

    for record in log:
        if tokenize(record.query):
            assert normalize_query(record.query) in mb
    # Clicked URLs appear as facets of U.
    u = mb.bipartite("U")
    for record in log:
        if record.has_click and tokenize(record.query):
            assert record.clicked_url in u.facets_of(
                normalize_query(record.query)
            )


@settings(max_examples=20, deadline=None)
@given(mini_logs())
def test_matrices_invariants_any_log(log):
    mb = build_multibipartite(log, sessionize(log), weighted=True)
    matrices = build_matrices(mb)
    n = matrices.n_queries
    for kind in BIPARTITE_KINDS:
        transition = matrices.transition[kind]
        sums = np.asarray(transition.sum(axis=1)).ravel()
        assert (sums <= 1.0 + 1e-9).all()
        affinity = matrices.affinity[kind]
        assert affinity.shape == (n, n)
        assert abs(affinity - affinity.T).max() < 1e-10
        assert (affinity.data >= -1e-12).all()


@settings(max_examples=20, deadline=None)
@given(mini_logs(), st.integers(min_value=1, max_value=6))
def test_diversify_contract_any_log(log, k):
    mb = build_multibipartite(log, sessionize(log), weighted=False)
    if mb.n_queries == 0:
        return
    matrices = build_matrices(mb)
    input_query = matrices.queries[0]
    result = diversify(
        matrices, input_query, config=DiversifyConfig(k=k)
    )
    assert len(result) <= k
    assert input_query not in result.ranking
    assert len(set(result.ranking)) == len(result.ranking)
    assert set(result.ranking) <= set(matrices.queries)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=30),
)
def test_hitting_time_bounds_random_chains(n, seed, horizon):
    rng = np.random.default_rng(seed)
    raw = rng.random((n, n))
    # Randomly zero some rows to exercise sub-stochastic handling.
    mask = rng.random(n) < 0.2
    raw[mask] = 0.0
    sums = raw.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    from scipy import sparse

    transition = sparse.csr_matrix(raw / sums)
    absorbing = [int(rng.integers(0, n))]
    h = truncated_hitting_times(transition, absorbing, horizon)
    assert (h >= 0).all()
    assert (h <= horizon + 1e-9).all()
    assert h[absorbing[0]] == 0.0


@settings(max_examples=25, deadline=None)
@given(mini_logs())
def test_cfiqf_never_drops_edges(log):
    mb = build_multibipartite(log, sessionize(log), weighted=False)
    for kind in BIPARTITE_KINDS:
        raw = mb.bipartite(kind)
        weighted = apply_cfiqf(raw, max(log.total_queries, 1))
        assert weighted.n_edges == raw.n_edges
        for query in raw.queries:
            for facet in raw.facets_of(query):
                assert weighted.weight(query, facet) > 0


@settings(max_examples=20, deadline=None)
@given(mini_logs())
def test_upm_theta_rows_are_distributions(log):
    from repro.personalize.upm import UPM, UPMConfig
    from repro.topicmodels.corpus import build_corpus

    corpus = build_corpus(log, sessionize(log))
    if corpus.n_documents == 0:
        return
    model = UPM(
        UPMConfig(n_topics=2, iterations=3, hyperopt_every=0, seed=0)
    ).fit(corpus)
    theta = model.theta
    assert np.allclose(theta.sum(axis=1), 1.0)
    assert (theta >= 0).all()
    for d in range(corpus.n_documents):
        predictive = model.predictive_word_distribution(d)
        assert predictive.sum() == pytest.approx(1.0)
