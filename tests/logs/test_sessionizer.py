"""Tests for repro.logs.sessionizer."""

import pytest

from repro.logs.schema import QueryRecord
from repro.logs.sessionizer import SessionizerConfig, sessionize
from repro.logs.storage import QueryLog


def make_log(rows):
    return QueryLog(
        QueryRecord(user_id=u, query=q, timestamp=float(t)) for u, q, t in rows
    )


class TestSessionizerConfig:
    def test_defaults(self):
        config = SessionizerConfig()
        assert config.gap_seconds == 1800

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gap_seconds": 0},
            {"soft_gap_seconds": 0},
            {"soft_gap_seconds": 4000},  # > gap
            {"min_term_overlap": 1.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SessionizerConfig(**kwargs)


class TestSessionize:
    def test_paper_table1_sessions(self, table1_log):
        # Table I: {q1,q2,q3}, {q4,q5}, {q6,q7} are the three sessions.
        sessions = sessionize(table1_log)
        assert len(sessions) == 3
        grouped = {s.user_id: s.queries for s in sessions}
        assert grouped["u1"] == ["sun", "sun java", "jvm download"]
        assert grouped["u2"] == ["sun", "solar cell"]
        assert grouped["u3"] == ["sun oracle", "java"]

    def test_hard_gap_splits(self):
        log = make_log([("u", "sun", 0), ("u", "moon", 4000)])
        sessions = sessionize(log)
        assert [s.queries for s in sessions] == [["sun"], ["moon"]]

    def test_short_gap_keeps(self):
        log = make_log([("u", "sun", 0), ("u", "completely different", 100)])
        assert len(sessionize(log)) == 1

    def test_soft_gap_with_overlap_continues(self):
        # 10-minute pause (soft window) but the query shares the term "sun".
        log = make_log([("u", "sun java", 0), ("u", "sun oracle", 600)])
        assert len(sessionize(log)) == 1

    def test_soft_gap_without_overlap_splits(self):
        log = make_log([("u", "sun java", 0), ("u", "pizza recipe", 600)])
        assert len(sessionize(log)) == 2

    def test_users_never_share_sessions(self):
        log = make_log([("a", "sun", 0), ("b", "sun", 1)])
        sessions = sessionize(log)
        assert len(sessions) == 2
        assert {s.user_id for s in sessions} == {"a", "b"}

    def test_session_ids_stable_and_unique(self, table1_log):
        sessions = sessionize(table1_log)
        ids = [s.session_id for s in sessions]
        assert len(set(ids)) == len(ids)
        assert sessionize(table1_log)[0].session_id == ids[0]

    def test_records_stay_ordered_within_session(self):
        log = make_log([("u", "b", 10), ("u", "a", 0)])  # out-of-order input
        (session,) = sessionize(log)
        stamps = [r.timestamp for r in session]
        assert stamps == sorted(stamps)

    def test_empty_log(self):
        assert sessionize(make_log([])) == []

    def test_every_record_in_exactly_one_session(self, table1_log):
        sessions = sessionize(table1_log)
        ids = [r.record_id for s in sessions for r in s]
        assert sorted(ids) == list(range(len(table1_log)))
