"""Tests for repro.logs.storage."""

import pytest

from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog


class TestQueryLogBasics:
    def test_len_and_iteration(self, table1_log):
        assert len(table1_log) == 7
        assert len(list(table1_log)) == 7

    def test_record_ids_assigned(self, table1_log):
        assert [r.record_id for r in table1_log] == list(range(7))

    def test_getitem(self, table1_log):
        assert table1_log[0].query == "sun"

    def test_users_sorted(self, table1_log):
        assert table1_log.users == ["u1", "u2", "u3"]

    def test_records_of_user_ordered(self, table1_log):
        queries = [r.query for r in table1_log.records_of("u1")]
        assert queries == ["sun", "sun java", "jvm download"]

    def test_records_of_unknown_user(self, table1_log):
        assert table1_log.records_of("nobody") == []

    def test_repr_mentions_counts(self, table1_log):
        assert "records=7" in repr(table1_log)


class TestQueryLogIndexes:
    def test_unique_queries(self, table1_log):
        assert "sun" in table1_log.unique_queries
        assert len(table1_log.unique_queries) == 6  # "sun" appears twice

    def test_query_frequency(self, table1_log):
        assert table1_log.query_frequency("sun") == 2
        assert table1_log.query_frequency("SUN") == 2  # normalized lookup
        assert table1_log.query_frequency("absent") == 0

    def test_term_frequency(self, table1_log):
        # "sun" occurs as a term in: sun, sun java, sun (u2), sun oracle -> 4
        assert table1_log.term_frequency("sun") == 4
        assert table1_log.term_frequency("java") == 2

    def test_url_frequency(self, table1_log):
        assert table1_log.url_frequency("www.java.com") == 2
        assert table1_log.url_frequency("www.oracle.com") == 1

    def test_total_queries_is_Q(self, table1_log):
        assert table1_log.total_queries == 7

    def test_vocabulary_and_urls_sorted(self, table1_log):
        assert table1_log.vocabulary == sorted(table1_log.vocabulary)
        assert table1_log.urls == sorted(table1_log.urls)

    def test_time_range(self, table1_log):
        low, high = table1_log.time_range
        assert low < high


class TestQueryLogDerivation:
    def test_filter(self, table1_log):
        clicks_only = table1_log.filter(lambda r: r.has_click)
        assert len(clicks_only) == 6
        assert all(r.has_click for r in clicks_only)

    def test_filter_reassigns_ids(self, table1_log):
        subset = table1_log.filter(lambda r: r.user_id == "u3")
        assert [r.record_id for r in subset] == [0, 1]

    def test_restrict_users(self, table1_log):
        sub = table1_log.restrict_users(["u1", "u3"])
        assert sub.users == ["u1", "u3"]
        assert len(sub) == 5

    def test_empty_log(self):
        empty = QueryLog([])
        assert len(empty) == 0
        assert empty.users == []
        try:
            empty.time_range
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestQueryLogExtend:
    """The documented extension path: ``extend`` builds, mutation is rejected."""

    def _new_records(self):
        return [
            QueryRecord(
                user_id="u1",
                query="solar flare",
                timestamp=1_355_400_000.0,
                clicked_url="space.example.com",
            ),
            QueryRecord(
                user_id="u4",
                query="sun",
                timestamp=1_355_400_100.0,
            ),
        ]

    def test_extend_returns_new_log(self, table1_log):
        extended = table1_log.extend(self._new_records())
        assert extended is not table1_log
        assert len(extended) == 9
        assert len(table1_log) == 7  # original untouched
        assert extended.users == ["u1", "u2", "u3", "u4"]

    def test_extend_continues_record_ids(self, table1_log):
        extended = table1_log.extend(self._new_records())
        assert [r.record_id for r in extended] == list(range(9))

    def test_extend_updates_indexes(self, table1_log):
        extended = table1_log.extend(self._new_records())
        assert extended.query_frequency("sun") == 3
        assert extended.query_frequency("solar flare") == 1
        assert extended.term_frequency("solar") == 2  # "solar cell" + new
        assert extended.url_frequency("space.example.com") == 1
        # The source log's indexes are unchanged.
        assert table1_log.query_frequency("sun") == 2
        assert table1_log.url_frequency("space.example.com") == 0

    def test_extend_keeps_per_user_time_order(self, table1_log):
        extended = table1_log.extend(self._new_records())
        for user in extended.users:
            stamps = [r.timestamp for r in extended.records_of(user)]
            assert stamps == sorted(stamps)

    def test_extend_empty_is_equivalent_copy(self, table1_log):
        extended = table1_log.extend([])
        assert len(extended) == len(table1_log)
        assert extended.unique_queries == table1_log.unique_queries

    def test_append_is_loudly_rejected(self, table1_log):
        record = self._new_records()[0]
        with pytest.raises(TypeError, match="immutable after construction"):
            table1_log.append(record)
        assert len(table1_log) == 7

    def test_records_property_is_defensive_copy(self, table1_log):
        records = table1_log.records
        records.clear()
        assert len(table1_log) == 7
        assert len(table1_log.records) == 7


def test_duplicate_rows_counted_independently():
    rows = [
        QueryRecord(user_id="u", query="sun", timestamp=float(i))
        for i in range(3)
    ]
    log = QueryLog(rows)
    assert log.query_frequency("sun") == 3
    assert log.total_queries == 3
