"""Tests for repro.logs.schema."""

import pytest

from repro.logs.schema import (
    QueryRecord,
    Session,
    format_timestamp,
    parse_timestamp,
)


def record(user="u1", query="sun", ts=0.0, url=None):
    return QueryRecord(user_id=user, query=query, timestamp=ts, clicked_url=url)


class TestTimestamps:
    def test_roundtrip(self):
        text = "2012-12-12 11:12:41"
        assert format_timestamp(parse_timestamp(text)) == text

    def test_paper_table1_order(self):
        t1 = parse_timestamp("2012-12-12 11:12:41")
        t2 = parse_timestamp("2012-12-12 11:13:01")
        assert t2 - t1 == 20

    def test_bad_format_raises(self):
        with pytest.raises(ValueError):
            parse_timestamp("12/12/2012")


class TestQueryRecord:
    def test_has_click(self):
        assert record(url="www.java.com").has_click
        assert not record().has_click

    def test_terms(self):
        assert record(query="the sun java").terms == ["sun", "java"]

    def test_with_record_id(self):
        r = record().with_record_id(5)
        assert r.record_id == 5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            record().query = "other"  # type: ignore[misc]


class TestSession:
    def test_user_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            Session("s", "u1", [record(user="u2")])

    def test_queries_and_clicks(self):
        s = Session(
            "s",
            "u1",
            [record(query="sun", url="a.com"), record(query="sun java", ts=1)],
        )
        assert s.queries == ["sun", "sun java"]
        assert s.clicked_urls == ["a.com"]

    def test_times(self):
        s = Session("s", "u1", [record(ts=10), record(ts=30)])
        assert s.start_time == 10
        assert s.end_time == 30

    def test_empty_session_times_raise(self):
        s = Session("s", "u1", [])
        with pytest.raises(ValueError):
            _ = s.start_time
        with pytest.raises(ValueError):
            _ = s.end_time

    def test_search_context_definition2(self):
        # Paper Definition 2: in session [q1, q2, q3], the context of q2 is
        # {q1} and the context of q3 is {q1, q2}.
        r1, r2, r3 = record(ts=0), record(query="sun java", ts=1), record(
            query="jvm download", ts=2
        )
        s = Session("s", "u1", [r1, r2, r3])
        assert s.search_context(0) == []
        assert s.search_context(1) == [r1]
        assert s.search_context(2) == [r1, r2]

    def test_search_context_bounds(self):
        s = Session("s", "u1", [record()])
        with pytest.raises(IndexError):
            s.search_context(1)
        with pytest.raises(IndexError):
            s.search_context(-1)

    def test_len_and_iter(self):
        s = Session("s", "u1", [record(), record(ts=1)])
        assert len(s) == 2
        assert len(list(s)) == 2
