"""Tests for repro.logs.spam (click-fraud detection)."""

import math

import pytest

from repro.logs.schema import QueryRecord
from repro.logs.spam import click_profile, detect_click_spammers
from repro.logs.storage import QueryLog


def fraud_log():
    rows = []
    # Spammer: 30 different query strings, all clicking one target URL.
    for i in range(30):
        rows.append(
            QueryRecord("spammer", f"spam query {i}", float(i),
                        clicked_url="www.target.com")
        )
    # Honest user: 30 clicks spread over 10 URLs.
    for i in range(30):
        rows.append(
            QueryRecord("honest", f"real query {i}", 1000.0 + i,
                        clicked_url=f"www.site{i % 10}.com")
        )
    # Light user: too few clicks to judge.
    rows.append(QueryRecord("light", "one query", 5000.0,
                            clicked_url="www.x.com"))
    return QueryLog(rows)


class TestClickProfile:
    def test_spammer_stats(self):
        stats = click_profile(fraud_log(), "spammer")
        assert stats.n_clicks == 30
        assert stats.n_urls == 1
        assert stats.entropy == 0.0
        assert stats.concentration == pytest.approx(1.0)

    def test_honest_stats(self):
        stats = click_profile(fraud_log(), "honest")
        assert stats.n_urls == 10
        assert stats.entropy == pytest.approx(math.log(10))
        assert stats.concentration < 0.4

    def test_single_click_user(self):
        stats = click_profile(fraud_log(), "light")
        assert stats.n_clicks == 1
        assert stats.concentration == 0.0

    def test_never_clicking_user(self):
        log = QueryLog([QueryRecord("u", "q", 0.0)])
        stats = click_profile(log, "u")
        assert stats.n_clicks == 0
        assert stats.concentration == 0.0

    def test_unknown_user(self):
        assert click_profile(fraud_log(), "ghost").n_clicks == 0


class TestDetectClickSpammers:
    def test_finds_only_the_spammer(self):
        offenders = detect_click_spammers(fraud_log())
        assert [s.user_id for s in offenders] == ["spammer"]

    def test_volume_floor_protects_light_users(self):
        offenders = detect_click_spammers(fraud_log(), min_clicks=2)
        # "light" has one click; still protected by min_clicks >= 2.
        assert "light" not in {s.user_id for s in offenders}

    def test_threshold_sensitivity(self):
        # With an extreme threshold nothing qualifies except perfection.
        offenders = detect_click_spammers(
            fraud_log(), concentration_threshold=1.0
        )
        assert [s.user_id for s in offenders] == ["spammer"]

    def test_validation(self):
        log = fraud_log()
        with pytest.raises(ValueError):
            detect_click_spammers(log, min_clicks=1)
        with pytest.raises(ValueError):
            detect_click_spammers(log, concentration_threshold=0.0)

    def test_composes_with_cleaning(self):
        from repro.logs.cleaning import clean_log

        log = fraud_log()
        spammers = {s.user_id for s in detect_click_spammers(log)}
        kept = log.filter(lambda r: r.user_id not in spammers)
        cleaned, _ = clean_log(kept)
        assert "spammer" not in cleaned.users
        assert "honest" in cleaned.users

    def test_synthetic_log_has_no_spammers(self):
        from repro.synth.generator import GeneratorConfig, generate_log
        from repro.synth.world import make_world

        world = make_world(seed=0)
        synthetic = generate_log(world, GeneratorConfig(n_users=20, seed=6))
        assert detect_click_spammers(synthetic.log) == []
