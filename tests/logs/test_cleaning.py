"""Tests for repro.logs.cleaning."""

import pytest

from repro.logs.cleaning import CleaningRules, clean_log
from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog


def make_log(rows):
    return QueryLog(
        QueryRecord(user_id=u, query=q, timestamp=float(t), clicked_url=url)
        for u, q, t, url in rows
    )


class TestCleaningRules:
    def test_defaults_valid(self):
        CleaningRules()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_query_frequency": 0},
            {"max_user_queries": 0},
            {"min_query_terms": -1},
            {"min_query_terms": 5, "max_query_terms": 4},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CleaningRules(**kwargs)


class TestCleanLog:
    def test_noop_on_clean_data(self, table1_log):
        cleaned, report = clean_log(table1_log)
        assert len(cleaned) == 7
        assert report.dropped_total == 0

    def test_normalizes_queries(self):
        log = make_log([("u", "Sun JAVA!", 0, None), ("u", "sun java", 1, None)])
        cleaned, _ = clean_log(log)
        assert cleaned.query_frequency("sun java") == 2

    def test_drops_empty_queries(self):
        log = make_log([("u", "???", 0, None), ("u", "sun", 1, None)])
        cleaned, report = clean_log(log)
        assert len(cleaned) == 1
        assert report.dropped_empty == 1

    def test_drops_pure_stopword_queries(self):
        log = make_log([("u", "the and of", 0, None), ("u", "sun", 1, None)])
        cleaned, report = clean_log(log)
        assert report.dropped_empty == 1
        assert cleaned.unique_queries == ["sun"]

    def test_drops_overlong_queries(self):
        long_query = " ".join(f"term{i}" for i in range(30))
        log = make_log([("u", long_query, 0, None), ("u", "sun", 1, None)])
        cleaned, report = clean_log(log)
        assert report.dropped_long == 1
        assert len(cleaned) == 1

    def test_rare_query_filter(self):
        rows = [("u", "popular", t, None) for t in range(3)]
        rows.append(("u", "one off", 10, None))
        cleaned, report = clean_log(
            make_log(rows), CleaningRules(min_query_frequency=2)
        )
        assert report.dropped_rare == 1
        assert cleaned.unique_queries == ["popular"]

    def test_robot_user_removed_entirely(self):
        rows = [("robot", f"spam {i}", i, None) for i in range(20)]
        rows += [("human", "sun", 100, None)]
        cleaned, report = clean_log(
            make_log(rows), CleaningRules(max_user_queries=10)
        )
        assert report.robot_users == ["robot"]
        assert report.dropped_robot_users == 20
        assert cleaned.users == ["human"]

    def test_robot_volume_does_not_rescue_rare_queries(self):
        # The robot hammers "weird query" 50 times; a human issues it once.
        rows = [("robot", "weird query", i, None) for i in range(50)]
        rows += [("human", "weird query", 100, None)]
        rows += [("human", "sun", 101, None), ("human", "sun", 102, None)]
        cleaned, _ = clean_log(
            make_log(rows),
            CleaningRules(max_user_queries=10, min_query_frequency=2),
        )
        assert "weird query" not in cleaned.unique_queries

    def test_drop_urls_declicks(self):
        log = make_log([("u", "sun", 0, "ad.doubleclick.net")])
        cleaned, report = clean_log(
            log, CleaningRules(drop_urls=frozenset({"ad.doubleclick.net"}))
        )
        assert report.declicked_urls == 1
        assert not cleaned[0].has_click

    def test_report_accounting_consistent(self):
        rows = [("u", "sun", t, None) for t in range(3)]
        rows += [("u", "???", 5, None)]
        cleaned, report = clean_log(make_log(rows))
        assert report.input_records == 4
        assert report.output_records == len(cleaned)
        assert report.dropped_total == report.dropped_empty

    def test_input_log_not_mutated(self, table1_log):
        before = [r.query for r in table1_log]
        clean_log(table1_log)
        assert [r.query for r in table1_log] == before
