"""Tests for repro.logs.aol (AOL TSV round-trip)."""

import io

from repro.logs.aol import AOL_HEADER, read_aol, write_aol
from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog


def sample_log():
    return QueryLog(
        [
            QueryRecord("142", "sun java", 1355310781.0, "www.java.com"),
            QueryRecord("142", "jvm download", 1355310861.0, None),
            QueryRecord("977", "solar cell", 1355382861.0, "en.wikipedia.org"),
        ]
    )


class TestWriteAol:
    def test_header_written(self):
        buffer = io.StringIO()
        write_aol(sample_log(), buffer)
        assert buffer.getvalue().splitlines()[0] == AOL_HEADER

    def test_row_count_returned(self):
        assert write_aol(sample_log(), io.StringIO()) == 3

    def test_noclick_row_has_empty_columns(self):
        buffer = io.StringIO()
        write_aol(sample_log(), buffer)
        noclick = buffer.getvalue().splitlines()[2]
        assert noclick.endswith("\t\t")
        assert noclick.count("\t") == 4

    def test_click_row_has_rank_and_url(self):
        buffer = io.StringIO()
        write_aol(sample_log(), buffer)
        click = buffer.getvalue().splitlines()[1]
        parts = click.split("\t")
        assert parts[3] == "1"
        assert parts[4] == "www.java.com"


class TestReadAol:
    def test_roundtrip(self):
        buffer = io.StringIO()
        write_aol(sample_log(), buffer)
        buffer.seek(0)
        log = read_aol(buffer)
        assert len(log) == 3
        assert log[0].query == "sun java"
        assert log[0].clicked_url == "www.java.com"
        assert log[1].clicked_url is None
        assert log[0].timestamp == 1355310781.0

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "aol.txt"
        write_aol(sample_log(), path)
        log = read_aol(path)
        assert len(log) == 3

    def test_max_records(self):
        buffer = io.StringIO()
        write_aol(sample_log(), buffer)
        buffer.seek(0)
        assert len(read_aol(buffer, max_records=2)) == 2

    def test_malformed_rows_skipped(self):
        text = "\n".join(
            [
                AOL_HEADER,
                "1\tsun\t2006-03-01 10:00:00\t1\twww.sun.com",
                "garbage row without tabs",
                "2\tsun\tnot-a-date\t\t",
                "3\tmoon\t2006-03-01 11:00:00\t\t",
                "",
            ]
        )
        log = read_aol(io.StringIO(text))
        assert len(log) == 2
        assert {r.user_id for r in log} == {"1", "3"}

    def test_three_column_variant_accepted(self):
        # Some AOL extracts omit the two click columns on no-click rows.
        text = AOL_HEADER + "\n5\tsun java\t2006-03-01 10:00:00\n"
        log = read_aol(io.StringIO(text))
        assert len(log) == 1
        assert log[0].clicked_url is None

    def test_headerless_file(self):
        text = "7\tsun\t2006-03-01 10:00:00\t1\twww.sun.com\n"
        log = read_aol(io.StringIO(text))
        assert len(log) == 1
