"""Tests for repro.topicmodels.base and repro.topicmodels.zoo."""

import numpy as np
import pytest

from repro.logs.sessionizer import sessionize
from repro.topicmodels.base import StructuredTopicModel, TopicModelConfig
from repro.topicmodels.corpus import build_corpus
from repro.topicmodels.zoo import MODEL_NAMES, build_model
from tests.personalize.test_upm import two_topic_log


@pytest.fixture(scope="module")
def corpus():
    log = two_topic_log(sessions_per_user=5, users=6)
    return build_corpus(log, sessionize(log))


class TestTopicModelConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_topics": 0},
            {"unit": "paragraph"},
            {"url_mode": "embedded"},
            {"alpha0": 0.0},
            {"iterations": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TopicModelConfig(**kwargs)


class TestStructuredTopicModel:
    @pytest.mark.parametrize("unit", ["token", "query", "session"])
    def test_units_fit_and_predict(self, corpus, unit):
        config = TopicModelConfig(n_topics=2, unit=unit, iterations=10, seed=0)
        model = StructuredTopicModel(config).fit(corpus)
        theta = model.theta
        assert theta.shape == (corpus.n_documents, 2)
        assert np.allclose(theta.sum(axis=1), 1.0)
        predictive = model.predictive_word_distribution(0)
        assert predictive.shape == (corpus.n_words,)
        assert predictive.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("url_mode", ["none", "folded", "channel"])
    def test_url_modes(self, corpus, url_mode):
        config = TopicModelConfig(
            n_topics=2, url_mode=url_mode, iterations=10, seed=0
        )
        model = StructuredTopicModel(config).fit(corpus)
        # phi is always over real words only.
        assert model.phi.shape == (2, corpus.n_words)
        assert np.allclose(model.phi.sum(axis=1), 1.0)

    def test_time_channel_learns_tau(self, corpus):
        config = TopicModelConfig(
            n_topics=2, use_time=True, iterations=15, seed=0
        )
        model = StructuredTopicModel(config).fit(corpus)
        assert not np.allclose(model._tau, 1.0)

    def test_learn_alpha_moves_prior(self, corpus):
        config = TopicModelConfig(
            n_topics=2, learn_alpha=True, iterations=15, seed=0
        )
        model = StructuredTopicModel(config).fit(corpus)
        assert not np.allclose(model.alpha, config.alpha0)

    def test_topics_separate_the_two_facets(self, corpus):
        config = TopicModelConfig(n_topics=2, iterations=30, seed=0)
        model = StructuredTopicModel(config).fit(corpus)
        java = corpus.id_of_word["java"]
        telescope = corpus.id_of_word["telescope"]
        phi = model.phi
        # The two crisp facets should peak in different topics.
        assert phi[:, java].argmax() != phi[:, telescope].argmax()

    def test_deterministic(self, corpus):
        config = TopicModelConfig(n_topics=2, iterations=10, seed=3)
        a = StructuredTopicModel(config).fit(corpus).theta
        b = StructuredTopicModel(config).fit(corpus).theta
        assert np.allclose(a, b)

    def test_unfitted_raises(self):
        model = StructuredTopicModel()
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = model.theta

    def test_empty_corpus_rejected(self):
        from repro.logs.storage import QueryLog

        empty = build_corpus(QueryLog([]), [])
        with pytest.raises(ValueError, match="no documents"):
            StructuredTopicModel().fit(empty)


class TestZoo:
    def test_all_names_build(self):
        for name in MODEL_NAMES:
            model = build_model(name, n_topics=3, iterations=5, seed=0)
            assert hasattr(model, "fit")
            assert hasattr(model, "predictive_word_distribution")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_model("GPT")

    def test_nine_models_match_fig4(self):
        assert len(MODEL_NAMES) == 9
        assert "UPM" in MODEL_NAMES
        assert "LDA" in MODEL_NAMES

    def test_models_fit_on_corpus(self, corpus):
        for name in ("LDA", "TOT", "CTM", "SSTM", "UPM"):
            model = build_model(name, n_topics=2, iterations=5, seed=0)
            model.fit(corpus)
            predictive = model.predictive_word_distribution(0)
            assert predictive.sum() == pytest.approx(1.0)
