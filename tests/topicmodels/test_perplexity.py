"""Tests for repro.topicmodels.perplexity (Eq. 35)."""

import math

import numpy as np
import pytest

from repro.logs.sessionizer import sessionize
from repro.topicmodels.corpus import build_corpus
from repro.topicmodels.perplexity import evaluate_perplexity, perplexity
from repro.topicmodels.zoo import build_model
from tests.personalize.test_upm import two_topic_log


class _UniformModel:
    """Test double: uniform predictive over the vocabulary."""

    def __init__(self, n_words):
        self.n_words = n_words

    def fit(self, corpus):
        return self

    def predictive_word_distribution(self, d):
        return np.full(self.n_words, 1.0 / self.n_words)


class _OracleModel:
    """Test double: puts almost all mass on one known word."""

    def __init__(self, n_words, target):
        self.n_words = n_words
        self.target = target

    def fit(self, corpus):
        return self

    def predictive_word_distribution(self, d):
        p = np.full(self.n_words, 1e-6)
        p[self.target] = 1.0 - 1e-6 * (self.n_words - 1)
        return p


class TestPerplexity:
    def test_uniform_model_gives_vocab_size(self):
        model = _UniformModel(50)
        assert perplexity(model, [[0, 1, 2]]) == pytest.approx(50.0)

    def test_oracle_model_near_one(self):
        model = _OracleModel(50, target=7)
        assert perplexity(model, [[7, 7, 7]]) == pytest.approx(1.0, abs=1e-3)

    def test_wrong_oracle_is_terrible(self):
        model = _OracleModel(50, target=7)
        assert perplexity(model, [[3]]) > 10_000

    def test_empty_documents_skipped(self):
        model = _UniformModel(10)
        assert perplexity(model, [[], [0], []]) == pytest.approx(10.0)

    def test_no_heldout_raises(self):
        with pytest.raises(ValueError, match="no held-out"):
            perplexity(_UniformModel(10), [[], []])

    def test_floor_prevents_inf(self):
        class ZeroModel(_UniformModel):
            def predictive_word_distribution(self, d):
                return np.zeros(self.n_words)

        value = perplexity(ZeroModel(10), [[0]])
        assert math.isfinite(value)


class TestEvaluatePerplexity:
    @pytest.fixture(scope="class")
    def corpus(self):
        log = two_topic_log(sessions_per_user=6, users=6)
        return build_corpus(log, sessionize(log))

    def test_real_model_beats_uniform(self, corpus):
        lda = build_model("LDA", n_topics=2, iterations=20, seed=0)
        value = evaluate_perplexity(lda, corpus, 0.7)
        assert 1.0 < value < corpus.n_words

    def test_upm_runs_through_protocol(self, corpus):
        upm = build_model("UPM", n_topics=2, iterations=15, seed=0)
        value = evaluate_perplexity(upm, corpus, 0.7)
        assert math.isfinite(value)
        assert value > 1.0

    def test_deterministic(self, corpus):
        a = evaluate_perplexity(
            build_model("LDA", n_topics=2, iterations=10, seed=1), corpus
        )
        b = evaluate_perplexity(
            build_model("LDA", n_topics=2, iterations=10, seed=1), corpus
        )
        assert a == pytest.approx(b)
