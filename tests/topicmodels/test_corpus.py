"""Tests for repro.topicmodels.corpus."""

import pytest

from repro.logs.schema import QueryRecord
from repro.logs.sessionizer import sessionize
from repro.logs.storage import QueryLog
from repro.topicmodels.corpus import build_corpus


@pytest.fixture
def corpus(table1_log):
    return build_corpus(table1_log, sessionize(table1_log))


class TestBuildCorpus:
    def test_one_document_per_user(self, corpus):
        assert corpus.n_documents == 3
        assert [d.user_id for d in corpus.documents] == ["u1", "u2", "u3"]

    def test_session_structure(self, corpus):
        u1 = corpus.document_of("u1")
        assert len(u1.sessions) == 1  # one session of three queries
        session = u1.sessions[0]
        words = [corpus.word_of_id[w] for w in session.words]
        assert words == ["sun", "sun", "java", "jvm", "download"]

    def test_urls_captured(self, corpus):
        u1 = corpus.document_of("u1")
        urls = [corpus.url_of_id[u] for u in u1.sessions[0].urls]
        assert urls == ["www.java.com", "java.sun.com"]

    def test_timestamps_normalized(self, corpus):
        for doc in corpus.documents:
            for session in doc.sessions:
                assert 0.0 <= session.timestamp <= 1.0
        # u1's session is the earliest, u3's the latest.
        assert corpus.document_of("u1").sessions[0].timestamp < (
            corpus.document_of("u3").sessions[0].timestamp
        )

    def test_vocab_maps_consistent(self, corpus):
        for word, wid in corpus.id_of_word.items():
            assert corpus.word_of_id[wid] == word
        for url, uid in corpus.id_of_url.items():
            assert corpus.url_of_id[uid] == url

    def test_total_tokens(self, corpus):
        assert corpus.total_tokens == sum(d.n_words for d in corpus.documents)

    def test_word_ids_drops_oov(self, corpus):
        ids = corpus.word_ids(["sun", "notaword"])
        assert len(ids) == 1
        assert corpus.word_of_id[ids[0]] == "sun"

    def test_document_of_unknown(self, corpus):
        with pytest.raises(KeyError):
            corpus.document_of("ghost")

    def test_stopword_only_sessions_dropped(self):
        log = QueryLog(
            [
                QueryRecord("u", "the and", 0.0),
                QueryRecord("v", "sun java", 10_000.0),
            ]
        )
        corpus = build_corpus(log, sessionize(log))
        assert corpus.n_documents == 1
        assert corpus.documents[0].user_id == "v"

    def test_empty_log(self):
        log = QueryLog([])
        corpus = build_corpus(log, [])
        assert corpus.n_documents == 0
        assert corpus.n_words == 0


class TestSplitPrefix:
    def test_fraction_bounds(self, corpus):
        with pytest.raises(ValueError):
            corpus.split_prefix(0.0)
        with pytest.raises(ValueError):
            corpus.split_prefix(1.0)

    def test_observed_keeps_at_least_one_session(self, corpus):
        observed, heldout = corpus.split_prefix(0.01)
        for doc in observed.documents:
            assert len(doc.sessions) >= 1
        assert len(heldout) == corpus.n_documents

    def test_vocabulary_shared(self, corpus):
        observed, _ = corpus.split_prefix(0.5)
        assert observed.word_of_id == corpus.word_of_id
        assert observed.url_of_id == corpus.url_of_id

    def test_words_partitioned(self):
        records = []
        for s in range(4):
            for q in range(2):
                records.append(
                    QueryRecord("u", f"word{s} extra{s}", s * 10_000.0 + q)
                )
        log = QueryLog(records)
        corpus = build_corpus(log, sessionize(log))
        observed, heldout = corpus.split_prefix(0.5)
        observed_words = sum(
            len(s.words) for d in observed.documents for s in d.sessions
        )
        assert observed_words + len(heldout[0]) == corpus.total_tokens

    def test_heldout_empty_when_single_session(self, corpus):
        _, heldout = corpus.split_prefix(0.9)
        u1 = corpus.doc_index["u1"]
        assert heldout[u1] == []  # u1 has one session, kept observed
