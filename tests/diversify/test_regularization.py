"""Tests for repro.diversify.regularization (Eqs. 8-15)."""

import numpy as np
import pytest

from repro.diversify.regularization import (
    RegularizationConfig,
    solve_relevance,
    system_matrix,
)
from repro.graphs.matrices import build_matrices
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize


@pytest.fixture
def matrices(table1_log):
    # Raw representation: ordering assertions below reason about edge
    # *structure*, which cfiqf re-weighting would obscure on 7 rows.
    sessions = sessionize(table1_log)
    return build_matrices(
        build_multibipartite(table1_log, sessions, weighted=False)
    )


class TestRegularizationConfig:
    def test_defaults(self):
        config = RegularizationConfig()
        assert set(config.alphas) == {"U", "S", "T"}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alphas": {"U": 1.0}},  # missing kinds
            {"alphas": {"U": -1.0, "S": 1.0, "T": 1.0}},
            {"alphas": {"U": 0.0, "S": 0.0, "T": 0.0}},
            {"tolerance": 0.0},
            {"max_iterations": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RegularizationConfig(**kwargs)


class TestSystemMatrix:
    def test_eq15_structure(self, matrices):
        config = RegularizationConfig()
        system = system_matrix(matrices, config).toarray()
        # (1 + sum(alpha)) on the diagonal minus sum of affinities.
        expected = (1 + 3.0) * np.eye(matrices.n_queries)
        for kind in ("U", "S", "T"):
            expected -= matrices.affinity[kind].toarray()
        assert np.allclose(system, expected)

    def test_positive_definite(self, matrices):
        system = system_matrix(matrices, RegularizationConfig()).toarray()
        eigenvalues = np.linalg.eigvalsh(system)
        assert eigenvalues.min() > 0

    def test_zero_alpha_drops_bipartite(self, matrices):
        config = RegularizationConfig(alphas={"U": 0.0, "S": 0.0, "T": 1.0})
        system = system_matrix(matrices, config).toarray()
        expected = 2.0 * np.eye(matrices.n_queries) - matrices.affinity[
            "T"
        ].toarray()
        assert np.allclose(system, expected)


class TestSolveRelevance:
    def test_solution_solves_the_system(self, matrices):
        f0 = np.zeros(matrices.n_queries)
        f0[matrices.query_index["sun"]] = 1.0
        config = RegularizationConfig()
        f_star = solve_relevance(matrices, f0, config)
        system = system_matrix(matrices, config)
        assert np.allclose(system @ f_star, f0, atol=1e-6)

    def test_mass_spreads_to_related_queries(self, matrices):
        f0 = np.zeros(matrices.n_queries)
        f0[matrices.query_index["sun"]] = 1.0
        f_star = solve_relevance(matrices, f0)
        # "sun java" shares a session and the term "sun" with the seed.
        assert f_star[matrices.query_index["sun java"]] > 0

    def test_closer_queries_score_higher(self, matrices):
        f0 = np.zeros(matrices.n_queries)
        f0[matrices.query_index["sun"]] = 1.0
        f_star = solve_relevance(matrices, f0)
        sun_java = f_star[matrices.query_index["sun java"]]
        solar = f_star[matrices.query_index["solar cell"]]
        assert sun_java > solar

    def test_input_query_scores_highest(self, matrices):
        f0 = np.zeros(matrices.n_queries)
        f0[matrices.query_index["sun"]] = 1.0
        f_star = solve_relevance(matrices, f0)
        assert f_star.argmax() == matrices.query_index["sun"]

    def test_shape_validated(self, matrices):
        with pytest.raises(ValueError, match="shape"):
            solve_relevance(matrices, np.zeros(3))

    def test_zero_f0_gives_zero(self, matrices):
        f_star = solve_relevance(matrices, np.zeros(matrices.n_queries))
        assert np.allclose(f_star, 0.0)

    def test_linear_in_f0(self, matrices):
        f0 = np.zeros(matrices.n_queries)
        f0[matrices.query_index["sun"]] = 1.0
        once = solve_relevance(matrices, f0)
        twice = solve_relevance(matrices, 2 * f0)
        assert np.allclose(twice, 2 * once, atol=1e-6)
