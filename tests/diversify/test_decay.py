"""Tests for repro.diversify.decay (Eq. 7)."""

import math

import numpy as np
import pytest

from repro.diversify.decay import build_context_vector
from repro.graphs.matrices import build_matrices
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.schema import QueryRecord
from repro.logs.sessionizer import sessionize


@pytest.fixture
def matrices(table1_log):
    sessions = sessionize(table1_log)
    return build_matrices(build_multibipartite(table1_log, sessions))


def context_record(query, ts):
    return QueryRecord(user_id="u1", query=query, timestamp=ts)


class TestBuildContextVector:
    def test_input_entry_is_one(self, matrices):
        f0 = build_context_vector(matrices, "sun", 100.0)
        assert f0[matrices.query_index["sun"]] == 1.0
        assert f0.sum() == 1.0

    def test_eq7_decay_value(self, matrices):
        lam = 0.01
        f0 = build_context_vector(
            matrices,
            "sun java",
            100.0,
            context=[context_record("sun", 40.0)],
            decay_lambda=lam,
        )
        expected = math.exp(lam * (40.0 - 100.0))
        assert f0[matrices.query_index["sun"]] == pytest.approx(expected)

    def test_older_context_weighs_less(self, matrices):
        f0 = build_context_vector(
            matrices,
            "jvm download",
            100.0,
            context=[
                context_record("sun", 10.0),
                context_record("sun java", 90.0),
            ],
        )
        older = f0[matrices.query_index["sun"]]
        newer = f0[matrices.query_index["sun java"]]
        assert 0 < older < newer < 1

    def test_unknown_input_raises(self, matrices):
        with pytest.raises(KeyError, match="not in the representation"):
            build_context_vector(matrices, "never seen", 0.0)

    def test_unknown_context_ignored(self, matrices):
        f0 = build_context_vector(
            matrices,
            "sun",
            100.0,
            context=[context_record("never seen", 50.0)],
        )
        assert np.count_nonzero(f0) == 1

    def test_future_context_rejected(self, matrices):
        with pytest.raises(ValueError, match="must precede"):
            build_context_vector(
                matrices, "sun", 100.0, context=[context_record("java", 200.0)]
            )

    def test_context_equal_to_input_not_double_counted(self, matrices):
        f0 = build_context_vector(
            matrices, "sun", 100.0, context=[context_record("sun", 50.0)]
        )
        assert f0[matrices.query_index["sun"]] == 1.0

    def test_repeated_context_capped_at_one(self, matrices):
        f0 = build_context_vector(
            matrices,
            "sun",
            100.0,
            context=[context_record("java", 99.9) for _ in range(50)],
        )
        assert f0[matrices.query_index["java"]] <= 1.0

    def test_invalid_lambda(self, matrices):
        with pytest.raises(ValueError):
            build_context_vector(matrices, "sun", 0.0, decay_lambda=0.0)
