"""Tests for repro.diversify.cross_bipartite (Eq. 16)."""

import numpy as np
import pytest

from repro.diversify.cross_bipartite import CrossBipartiteWalker, SwitchMatrix
from repro.graphs.matrices import build_matrices, row_normalize
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize


@pytest.fixture
def matrices(table1_log):
    sessions = sessionize(table1_log)
    return build_matrices(build_multibipartite(table1_log, sessions))


class TestSwitchMatrix:
    def test_uniform(self):
        switch = SwitchMatrix.uniform()
        assert np.allclose(switch.matrix, 1 / 3)

    def test_sticky(self):
        switch = SwitchMatrix.sticky(0.8)
        assert np.allclose(np.diag(switch.matrix), 0.8)
        assert np.allclose(switch.matrix.sum(axis=1), 1.0)

    def test_sticky_bounds(self):
        with pytest.raises(ValueError):
            SwitchMatrix.sticky(1.5)

    def test_single(self):
        switch = SwitchMatrix.single("T")
        assert np.allclose(switch.matrix[:, 2], 1.0)
        with pytest.raises(ValueError):
            SwitchMatrix.single("Z")

    def test_rows_must_be_stochastic(self):
        with pytest.raises(ValueError, match="sum to 1"):
            SwitchMatrix(np.eye(3) * 0.5)
        with pytest.raises(ValueError, match="non-negative"):
            SwitchMatrix(np.array([[2, -1, 0], [0, 1, 0], [0, 0, 1]], float))

    def test_shape_checked(self):
        with pytest.raises(ValueError, match="3x3"):
            SwitchMatrix(np.eye(2))

    def test_mixture_weights_uniform(self):
        weights = SwitchMatrix.uniform().mixture_weights()
        assert np.allclose(weights, 1 / 3)

    def test_mixture_weights_single(self):
        weights = SwitchMatrix.single("S").mixture_weights()
        assert np.allclose(weights, [0, 1, 0])

    def test_mixture_weights_custom_prior(self):
        weights = SwitchMatrix.uniform().mixture_weights(
            np.array([1.0, 0.0, 0.0])
        )
        assert np.allclose(weights, 1 / 3)

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            SwitchMatrix.uniform().mixture_weights(np.array([1.0, 1.0, 1.0]))


class TestCrossBipartiteWalker:
    def test_uniform_equals_renormalized_mean(self, matrices):
        walker = CrossBipartiteWalker(matrices)
        expected = row_normalize(matrices.mean_transition())
        assert abs(walker.transition - expected).max() < 1e-12

    def test_rows_stochastic_where_connected(self, matrices):
        walker = CrossBipartiteWalker(matrices)
        sums = np.asarray(walker.transition.sum(axis=1)).ravel()
        assert ((np.isclose(sums, 1.0)) | (sums == 0)).all()

    def test_single_kind_matches_that_bipartite(self, matrices):
        walker = CrossBipartiteWalker(matrices, SwitchMatrix.single("S"))
        expected = row_normalize(matrices.transition["S"])
        assert abs(walker.transition - expected).max() < 1e-12

    def test_url_only_walker_ignores_session_links(self, matrices):
        # "sun" and "solar cell" are linked only through u2's session.
        walker = CrossBipartiteWalker(matrices, SwitchMatrix.single("U"))
        sun = matrices.query_index["sun"]
        solar = matrices.query_index["solar cell"]
        assert walker.transition[sun, solar] == 0.0

    def test_uniform_walker_reaches_session_links(self, matrices):
        walker = CrossBipartiteWalker(matrices)
        sun = matrices.query_index["sun"]
        solar = matrices.query_index["solar cell"]
        assert walker.transition[sun, solar] > 0.0

    def test_walker_exposes_inputs(self, matrices):
        switch = SwitchMatrix.sticky(0.5)
        walker = CrossBipartiteWalker(matrices, switch)
        assert walker.matrices is matrices
        assert walker.switch is switch


class TestMixtureWeightsPrior:
    def test_negative_prior_component_rejected(self):
        # [-0.5, 0.75, 0.75] sums to 1 but is not a distribution; the old
        # shape+sum check let it through into the walk mixture.
        switch = SwitchMatrix.uniform()
        with pytest.raises(ValueError, match="non-negative"):
            switch.mixture_weights(np.array([-0.5, 0.75, 0.75]))

    def test_valid_prior_accepted(self):
        switch = SwitchMatrix.sticky(0.6)
        weights = switch.mixture_weights(np.array([0.5, 0.25, 0.25]))
        assert weights.shape == (3,)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights >= 0).all()
