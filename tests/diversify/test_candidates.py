"""Tests for repro.diversify.candidates (Algorithm 1, end-to-end)."""

import pytest

from repro.diversify.candidates import (
    DiversifiedSuggestions,
    DiversifyConfig,
    diversify,
)
from repro.graphs.compact import CompactConfig, RandomWalkExpander
from repro.graphs.matrices import build_matrices
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.oracle import Oracle
from repro.synth.world import make_world


@pytest.fixture
def table1_matrices(table1_log):
    # Raw weights keep the 7-row example's structure readable (see
    # tests/diversify/test_regularization.py for the same choice).
    sessions = sessionize(table1_log)
    return build_matrices(
        build_multibipartite(table1_log, sessions, weighted=False)
    )


@pytest.fixture(scope="module")
def synthetic_setup():
    world = make_world(seed=0)
    synthetic = generate_log(
        world, GeneratorConfig(n_users=40, mean_sessions_per_user=10, seed=5)
    )
    sessions = sessionize(synthetic.log)
    mb = build_multibipartite(synthetic.log, sessions, weighted=True)
    return world, synthetic, mb


class TestDiversifyConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"k": 0}, {"decay_lambda": 0.0}, {"hitting_iterations": 0}],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DiversifyConfig(**kwargs)


class TestDiversifyOnTable1:
    def test_input_never_suggested(self, table1_matrices):
        result = diversify(table1_matrices, "sun", config=DiversifyConfig(k=5))
        assert "sun" not in result.ranking

    def test_k_respected(self, table1_matrices):
        result = diversify(table1_matrices, "sun", config=DiversifyConfig(k=3))
        assert len(result) == 3

    def test_k_larger_than_graph(self, table1_matrices):
        result = diversify(table1_matrices, "sun", config=DiversifyConfig(k=50))
        assert len(result) == 5  # 6 queries minus the input

    def test_no_duplicates(self, table1_matrices):
        result = diversify(table1_matrices, "sun", config=DiversifyConfig(k=5))
        assert len(set(result.ranking)) == len(result.ranking)

    def test_first_candidate_most_related(self, table1_matrices):
        # "sun java" shares a session AND the term "sun" with the input;
        # it must beat "solar cell" (session only) for the first slot.
        result = diversify(table1_matrices, "sun", config=DiversifyConfig(k=5))
        assert result.ranking[0] == "sun java"

    def test_relevance_scores_attached(self, table1_matrices):
        result = diversify(table1_matrices, "sun", config=DiversifyConfig(k=3))
        assert set(result.relevance) == set(result.ranking)
        assert all(v >= 0 for v in result.relevance.values())

    def test_context_excluded_from_candidates(self, table1_matrices):
        from repro.logs.schema import QueryRecord

        context = [QueryRecord("u1", "sun", 0.0)]
        result = diversify(
            table1_matrices,
            "sun java",
            input_timestamp=10.0,
            context=context,
            config=DiversifyConfig(k=5),
        )
        assert "sun" not in result.ranking
        assert "sun java" not in result.ranking

    def test_unknown_input_raises(self, table1_matrices):
        with pytest.raises(KeyError):
            diversify(table1_matrices, "never seen before")

    def test_deterministic(self, table1_matrices):
        a = diversify(table1_matrices, "sun", config=DiversifyConfig(k=5))
        b = diversify(table1_matrices, "sun", config=DiversifyConfig(k=5))
        assert a.ranking == b.ranking

    def test_iterable_and_top(self, table1_matrices):
        result = diversify(table1_matrices, "sun", config=DiversifyConfig(k=4))
        assert list(result) == result.ranking
        assert result.top(2) == result.ranking[:2]


class TestDiversifyOnSyntheticLog:
    def test_ambiguous_query_covers_multiple_facets(self, synthetic_setup):
        world, synthetic, mb = synthetic_setup
        if "sun" not in mb:
            pytest.skip("seeded log does not contain the bare query 'sun'")
        expander = RandomWalkExpander(mb)
        compact = mb.restrict_queries(
            expander.expand({"sun": 1.0}, CompactConfig(size=120))
        )
        matrices = build_matrices(compact)
        result = diversify(matrices, "sun", config=DiversifyConfig(k=10))
        oracle = Oracle(world, synthetic)
        categories = {
            oracle.category_of_query(q)
            for q in result.ranking
            if oracle.category_of_query(q) is not None
        }
        # Diversification must cover more than one facet of "sun".
        assert len(categories) >= 2

    def test_suggestions_are_log_queries(self, synthetic_setup):
        _, synthetic, mb = synthetic_setup
        seed = mb.queries[10]
        expander = RandomWalkExpander(mb)
        compact = mb.restrict_queries(
            expander.expand({seed: 1.0}, CompactConfig(size=60))
        )
        matrices = build_matrices(compact)
        result = diversify(matrices, seed, config=DiversifyConfig(k=8))
        log_queries = set(mb.queries)
        assert set(result.ranking) <= log_queries

    def test_diversified_tail_differs_from_pure_relevance(
        self, synthetic_setup
    ):
        """The hitting-time step must not simply return F*-sorted order."""
        _, _, mb = synthetic_setup
        seed = mb.queries[10]
        expander = RandomWalkExpander(mb)
        compact = mb.restrict_queries(
            expander.expand({seed: 1.0}, CompactConfig(size=80))
        )
        matrices = build_matrices(compact)
        from repro.diversify.decay import build_context_vector
        from repro.diversify.regularization import solve_relevance

        result = diversify(matrices, seed, config=DiversifyConfig(k=10))
        f0 = build_context_vector(matrices, seed, 0.0)
        f_star = solve_relevance(matrices, f0)
        by_relevance = sorted(
            (q for q in matrices.queries if q != seed),
            key=lambda q: (-f_star[matrices.query_index[q]], q),
        )[:10]
        assert result.ranking != by_relevance
