"""Tests for diversify_from_seed_vector (the term-backoff engine)."""

import numpy as np
import pytest

from repro.diversify.candidates import (
    DiversifyConfig,
    diversify,
    diversify_from_seed_vector,
)
from repro.graphs.matrices import build_matrices
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize


@pytest.fixture
def matrices(table1_log):
    sessions = sessionize(table1_log)
    return build_matrices(
        build_multibipartite(table1_log, sessions, weighted=False)
    )


class TestDiversifyFromSeedVector:
    def test_matches_diversify_for_plain_input(self, matrices):
        # diversify() is a thin wrapper; the two entry points must agree.
        via_diversify = diversify(
            matrices, "sun", config=DiversifyConfig(k=4)
        )
        f0 = np.zeros(matrices.n_queries)
        f0[matrices.query_index["sun"]] = 1.0
        via_seed = diversify_from_seed_vector(
            matrices, f0, {"sun"}, "sun", DiversifyConfig(k=4)
        )
        assert via_diversify.ranking == via_seed.ranking

    def test_multi_seed_vector(self, matrices):
        f0 = np.zeros(matrices.n_queries)
        f0[matrices.query_index["sun"]] = 0.5
        f0[matrices.query_index["java"]] = 0.5
        result = diversify_from_seed_vector(
            matrices, f0, set(), "synthetic-input", DiversifyConfig(k=3)
        )
        assert len(result) == 3
        assert result.input_query == "synthetic-input"

    def test_empty_exclusion_allows_seed_queries(self, matrices):
        f0 = np.zeros(matrices.n_queries)
        f0[matrices.query_index["sun"]] = 1.0
        result = diversify_from_seed_vector(
            matrices, f0, set(), "label", DiversifyConfig(k=6)
        )
        # With no exclusions the seed itself is an eligible suggestion
        # (the backoff behaviour: the closest existing query is valid).
        assert "sun" in result.ranking

    def test_all_excluded_gives_empty(self, matrices):
        f0 = np.ones(matrices.n_queries)
        result = diversify_from_seed_vector(
            matrices, f0, set(matrices.queries), "label"
        )
        assert len(result) == 0

    def test_zero_vector_still_returns_pool(self, matrices):
        # A zero F0 yields zero relevance everywhere; selection degrades to
        # deterministic tie-breaking but must not crash.
        f0 = np.zeros(matrices.n_queries)
        result = diversify_from_seed_vector(
            matrices, f0, set(), "label", DiversifyConfig(k=2)
        )
        assert len(result) == 2
