"""Tests for repro.diversify.hitting_time (Eq. 17)."""

import numpy as np
import pytest
from scipy import sparse

from repro.diversify.hitting_time import (
    HittingTimeEngine,
    truncated_hitting_times,
)


def T(rows):
    return sparse.csr_matrix(np.array(rows, dtype=float))


class TestBasics:
    def test_absorbing_nodes_are_zero(self):
        transition = T([[0, 1], [1, 0]])
        h = truncated_hitting_times(transition, [0], iterations=10)
        assert h[0] == 0.0

    def test_one_step_neighbor(self):
        # State 1 moves to state 0 with probability 1: h(1) = 1.
        transition = T([[0, 1], [1, 0]])
        h = truncated_hitting_times(transition, [0], iterations=30)
        assert h[1] == pytest.approx(1.0)

    def test_geometric_chain_expected_value(self):
        # From state 1: with p=0.5 hit S, with p=0.5 stay -> E[steps] = 2.
        transition = T([[1, 0], [0.5, 0.5]])
        h = truncated_hitting_times(transition, [0], iterations=60)
        assert h[1] == pytest.approx(2.0, rel=1e-3)

    def test_unreachable_saturates_at_horizon(self):
        # State 2 loops on itself and never reaches state 0.
        transition = T([[1, 0, 0], [1, 0, 0], [0, 0, 1]])
        h = truncated_hitting_times(transition, [0], iterations=15)
        assert h[2] == pytest.approx(15.0)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        raw = rng.random((20, 20))
        transition = sparse.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        h = truncated_hitting_times(transition, [0, 1], iterations=25)
        assert (h >= 0).all()
        assert (h <= 25).all()
        assert h[0] == h[1] == 0.0

    def test_three_state_chain(self):
        # 2 -> 1 -> 0 deterministic: h(1)=1, h(2)=2.
        transition = T([[1, 0, 0], [1, 0, 0], [0, 1, 0]])
        h = truncated_hitting_times(transition, [0], iterations=30)
        assert h[1] == pytest.approx(1.0)
        assert h[2] == pytest.approx(2.0)

    def test_larger_absorbing_set_not_larger_times(self):
        rng = np.random.default_rng(1)
        raw = rng.random((12, 12))
        transition = sparse.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        small = truncated_hitting_times(transition, [0], iterations=40)
        large = truncated_hitting_times(transition, [0, 3, 7], iterations=40)
        assert (large <= small + 1e-9).all()


class TestSubstochasticRows:
    def test_leaked_mass_charged_the_horizon(self):
        # State 1 moves to the absorbing state with probability 0.5 and
        # leaks (leaves the neighbourhood) with probability 0.5.
        transition = T([[1, 0], [0.5, 0.0]])
        h = truncated_hitting_times(transition, [0], iterations=20)
        # Expected: 0.5 * 1 + 0.5 * horizon-ish -> much greater than 1.
        assert h[1] > 5.0
        assert h[1] <= 20.0


class TestValidation:
    def test_empty_absorbing_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            truncated_hitting_times(T([[1]]), [])

    def test_out_of_range_absorbing(self):
        with pytest.raises(ValueError, match="out of range"):
            truncated_hitting_times(T([[1]]), [5])

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            truncated_hitting_times(
                sparse.csr_matrix(np.ones((2, 3))), [0]
            )

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError, match="iterations"):
            truncated_hitting_times(T([[1]]), [0], iterations=0)


class TestFusedAdditiveTerm:
    """The per-step additive term is fused (leak vector + step scalar).

    Regression for the O(l·n) ``_additive`` table the engine used to
    materialize: the fused form must stay bit-identical to the reference
    ``swap += 1 + leak·(step-1)`` row while holding only O(n) state.
    """

    def _reference_compute(self, transition, absorbing, iterations):
        """The pre-fusion implementation, additive rows materialized."""
        transition = transition.tocsr()
        n = transition.shape[0]
        row_mass = np.asarray(transition.sum(axis=1)).ravel()
        leak = np.clip(1.0 - row_mass, 0.0, None)
        additive = [
            1.0 + leak * float(step - 1)
            for step in range(1, iterations + 1)
        ]
        absorbing_idx = np.asarray(sorted(set(absorbing)), dtype=int)
        h = np.zeros(n)
        swap = np.zeros(n)
        for step in range(1, iterations + 1):
            swap[:] = transition @ h
            swap += additive[step - 1]
            swap[absorbing_idx] = 0.0
            h, swap = swap, h
        return np.minimum(h, float(iterations))

    def test_bit_identical_with_leaky_rows(self):
        rng = np.random.default_rng(7)
        raw = rng.random((30, 30)) * (rng.random((30, 30)) < 0.3)
        # Sub-stochastic: scale rows to sums in (0, 1].
        sums = raw.sum(axis=1, keepdims=True)
        sums[sums == 0] = 1.0
        scale = rng.uniform(0.4, 1.0, size=(30, 1))
        transition = sparse.csr_matrix(raw / sums * scale)
        engine = HittingTimeEngine(transition, iterations=25)
        for absorbing in ([0], [1, 5, 9], list(range(10))):
            expected = self._reference_compute(transition, absorbing, 25)
            assert np.array_equal(engine.compute(absorbing), expected)

    def test_bit_identical_with_stochastic_rows(self):
        rng = np.random.default_rng(3)
        raw = rng.random((20, 20))
        transition = sparse.csr_matrix(
            raw / raw.sum(axis=1, keepdims=True)
        )
        engine = HittingTimeEngine(transition, iterations=15)
        expected = self._reference_compute(transition, [2, 4], 15)
        assert np.array_equal(engine.compute([2, 4]), expected)

    def test_no_materialized_additive_table(self):
        engine = HittingTimeEngine(T([[0, 1], [1, 0]]), iterations=50)
        assert not hasattr(engine, "_additive")
