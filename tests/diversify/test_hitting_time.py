"""Tests for repro.diversify.hitting_time (Eq. 17)."""

import numpy as np
import pytest
from scipy import sparse

from repro.diversify.hitting_time import truncated_hitting_times


def T(rows):
    return sparse.csr_matrix(np.array(rows, dtype=float))


class TestBasics:
    def test_absorbing_nodes_are_zero(self):
        transition = T([[0, 1], [1, 0]])
        h = truncated_hitting_times(transition, [0], iterations=10)
        assert h[0] == 0.0

    def test_one_step_neighbor(self):
        # State 1 moves to state 0 with probability 1: h(1) = 1.
        transition = T([[0, 1], [1, 0]])
        h = truncated_hitting_times(transition, [0], iterations=30)
        assert h[1] == pytest.approx(1.0)

    def test_geometric_chain_expected_value(self):
        # From state 1: with p=0.5 hit S, with p=0.5 stay -> E[steps] = 2.
        transition = T([[1, 0], [0.5, 0.5]])
        h = truncated_hitting_times(transition, [0], iterations=60)
        assert h[1] == pytest.approx(2.0, rel=1e-3)

    def test_unreachable_saturates_at_horizon(self):
        # State 2 loops on itself and never reaches state 0.
        transition = T([[1, 0, 0], [1, 0, 0], [0, 0, 1]])
        h = truncated_hitting_times(transition, [0], iterations=15)
        assert h[2] == pytest.approx(15.0)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        raw = rng.random((20, 20))
        transition = sparse.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        h = truncated_hitting_times(transition, [0, 1], iterations=25)
        assert (h >= 0).all()
        assert (h <= 25).all()
        assert h[0] == h[1] == 0.0

    def test_three_state_chain(self):
        # 2 -> 1 -> 0 deterministic: h(1)=1, h(2)=2.
        transition = T([[1, 0, 0], [1, 0, 0], [0, 1, 0]])
        h = truncated_hitting_times(transition, [0], iterations=30)
        assert h[1] == pytest.approx(1.0)
        assert h[2] == pytest.approx(2.0)

    def test_larger_absorbing_set_not_larger_times(self):
        rng = np.random.default_rng(1)
        raw = rng.random((12, 12))
        transition = sparse.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        small = truncated_hitting_times(transition, [0], iterations=40)
        large = truncated_hitting_times(transition, [0, 3, 7], iterations=40)
        assert (large <= small + 1e-9).all()


class TestSubstochasticRows:
    def test_leaked_mass_charged_the_horizon(self):
        # State 1 moves to the absorbing state with probability 0.5 and
        # leaks (leaves the neighbourhood) with probability 0.5.
        transition = T([[1, 0], [0.5, 0.0]])
        h = truncated_hitting_times(transition, [0], iterations=20)
        # Expected: 0.5 * 1 + 0.5 * horizon-ish -> much greater than 1.
        assert h[1] > 5.0
        assert h[1] <= 20.0


class TestValidation:
    def test_empty_absorbing_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            truncated_hitting_times(T([[1]]), [])

    def test_out_of_range_absorbing(self):
        with pytest.raises(ValueError, match="out of range"):
            truncated_hitting_times(T([[1]]), [5])

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            truncated_hitting_times(
                sparse.csr_matrix(np.ones((2, 3))), [0]
            )

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError, match="iterations"):
            truncated_hitting_times(T([[1]]), [0], iterations=0)
