"""Tests for repro.eval.diversity / relevance / ppr / hpr."""

import pytest

from repro.eval.diversity import DiversityMetric
from repro.eval.hpr import HPRMetric
from repro.eval.ppr import PPRMetric
from repro.eval.relevance import RelevanceMetric
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.oracle import Oracle
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def setup():
    world = make_world(seed=0)
    synthetic = generate_log(
        world, GeneratorConfig(n_users=25, mean_sessions_per_user=8, seed=9)
    )
    oracle = Oracle(world, synthetic)
    return world, synthetic, oracle


class TestDiversityMetric:
    @pytest.fixture(scope="class")
    def metric(self, setup):
        world, synthetic, oracle = setup
        return DiversityMetric(synthetic.log, oracle)

    def test_clicked_pages_from_log(self, setup, metric):
        _, synthetic, _ = setup
        clicked_record = next(r for r in synthetic.log if r.has_click)
        pages = metric.clicked_pages(clicked_record.query)
        assert clicked_record.clicked_url in pages

    def test_same_query_zero_diversity_against_itself(self, setup, metric):
        _, synthetic, _ = setup
        record = next(r for r in synthetic.log if r.has_click)
        d = metric.pair_diversity(record.query, record.query)
        # Identical click sets in the same category: d close to 0.
        assert d < 0.5

    def test_cross_topic_pair_fully_diverse(self, setup, metric):
        _, synthetic, oracle = setup
        # Find two clicked queries with different top-level categories.
        clicked = [r.query for r in synthetic.log if r.has_click]
        base_cat = oracle.category_of_query(clicked[0])
        other = next(
            q
            for q in clicked
            if (c := oracle.category_of_query(q)) is not None
            and c.top != base_cat.top
        )
        assert metric.pair_diversity(clicked[0], other) == pytest.approx(1.0)

    def test_unclicked_query_maximally_diverse(self, metric):
        assert metric.pair_diversity("never clicked", "also never") == 1.0

    def test_list_diversity_bounds(self, setup, metric):
        _, synthetic, _ = setup
        queries = [r.query for r in synthetic.log[:20:2]]
        value = metric.list_diversity(queries, k=5)
        assert 0.0 <= value <= 1.0

    def test_short_lists_zero(self, metric):
        assert metric.list_diversity([]) == 0.0
        assert metric.list_diversity(["one"]) == 0.0

    def test_k_prefix_respected(self, setup, metric):
        _, synthetic, _ = setup
        queries = [r.query for r in synthetic.log[:10]]
        full = metric.list_diversity(queries)
        top2 = metric.list_diversity(queries, k=2)
        assert top2 == metric.list_diversity(queries[:2])
        assert 0.0 <= full <= 1.0


class TestRelevanceMetric:
    @pytest.fixture(scope="class")
    def metric(self, setup):
        return RelevanceMetric(setup[2])

    def test_same_topic_full_relevance(self, metric):
        assert metric.pair_relevance("jvm applet", "java jdk") == 1.0

    def test_cross_topic_zero(self, metric):
        assert metric.pair_relevance("jvm applet", "racket serve") == 0.0

    def test_sibling_topics_partial(self, metric):
        # Java and Python share Computers/Programming.
        value = metric.pair_relevance("jvm applet", "django flask")
        assert value == pytest.approx(2 / 3)

    def test_list_relevance_mean(self, metric):
        value = metric.list_relevance(
            "jvm applet", ["java jdk", "racket serve"]
        )
        assert value == pytest.approx(0.5)

    def test_empty_list(self, metric):
        assert metric.list_relevance("jvm", []) == 0.0

    def test_relevance_at_rank(self, metric):
        suggestions = ["java jdk", "racket serve"]
        assert metric.relevance_at("jvm applet", suggestions, 0) == 1.0
        assert metric.relevance_at("jvm applet", suggestions, 1) == 0.0
        assert metric.relevance_at("jvm applet", suggestions, 9) == 0.0
        with pytest.raises(ValueError):
            metric.relevance_at("jvm", suggestions, -1)


class TestPPRMetric:
    @pytest.fixture(scope="class")
    def metric(self, setup):
        return PPRMetric(setup[0].web)

    def test_on_topic_suggestion_scores_higher(self, setup, metric):
        _, synthetic, oracle = setup
        session = next(
            s for s in synthetic.sessions if s.clicked_urls
        )
        intent = oracle.intent_of_session(session.session_id)
        on_topic = " ".join(
            oracle.world.vocabulary.words_of(intent)[:2]
        )
        assert metric.suggestion_ppr(on_topic, session) > (
            metric.suggestion_ppr("zzzz qqqq", session)
        )

    def test_list_ppr_bounds(self, setup, metric):
        _, synthetic, _ = setup
        session = next(s for s in synthetic.sessions if s.clicked_urls)
        value = metric.list_ppr(["jvm applet", "racket serve"], session)
        assert 0.0 <= value <= 1.0

    def test_no_clicks_means_zero(self, setup, metric):
        _, synthetic, _ = setup
        session = next(
            (s for s in synthetic.sessions if not s.clicked_urls), None
        )
        if session is None:
            pytest.skip("every generated session has clicks")
        assert metric.list_ppr(["anything"], session) == 0.0

    def test_empty_suggestions(self, setup, metric):
        _, synthetic, _ = setup
        assert metric.list_ppr([], synthetic.sessions[0]) == 0.0


class TestHPRMetric:
    @pytest.fixture(scope="class")
    def metric(self, setup):
        return HPRMetric(setup[2], noise_sd=0.0, seed=0)

    def test_on_intent_suggestions_score_high(self, setup, metric):
        _, synthetic, oracle = setup
        session = synthetic.sessions[0]
        intent = oracle.intent_of_session(session.session_id)
        on_topic = " ".join(oracle.world.vocabulary.words_of(intent)[:2])
        good = metric.list_hpr([on_topic], session)
        bad = metric.list_hpr(["zzzz qqqq"], session)
        assert good > bad

    def test_bounds(self, setup, metric):
        _, synthetic, _ = setup
        session = synthetic.sessions[0]
        value = metric.list_hpr(
            [r.query for r in synthetic.log[:5]], session
        )
        assert 0.0 <= value <= 1.0

    def test_empty_list(self, setup, metric):
        _, synthetic, _ = setup
        assert metric.list_hpr([], synthetic.sessions[0]) == 0.0
