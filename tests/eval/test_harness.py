"""Tests for repro.eval.harness and repro.eval.efficiency."""

import pytest

from repro.baselines.registry import build_baseline
from repro.eval.diversity import DiversityMetric
from repro.eval.efficiency import measure_latency
from repro.eval.harness import (
    evaluate_personalized,
    evaluate_suggester,
    split_train_test,
)
from repro.eval.ppr import PPRMetric
from repro.eval.relevance import RelevanceMetric
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.oracle import Oracle
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def setup():
    world = make_world(seed=0)
    synthetic = generate_log(
        world, GeneratorConfig(n_users=20, mean_sessions_per_user=8, seed=13)
    )
    oracle = Oracle(world, synthetic)
    return world, synthetic, oracle


class TestSplitTrainTest:
    def test_holds_out_recent_sessions(self, setup):
        _, synthetic, _ = setup
        split = split_train_test(synthetic, n_test_sessions=2)
        for user_id in split.test_users:
            user_tests = [
                s for s in split.test_sessions if s.user_id == user_id
            ]
            user_trains = [
                s for s in split.train_sessions if s.user_id == user_id
            ]
            assert len(user_tests) <= 2
            latest_train = max(s.start_time for s in user_trains)
            for test in user_tests:
                assert test.start_time >= latest_train

    def test_min_train_respected(self, setup):
        _, synthetic, _ = setup
        split = split_train_test(
            synthetic, n_test_sessions=100, min_train_sessions=2
        )
        for user_id in split.test_users:
            user_trains = [
                s for s in split.train_sessions if s.user_id == user_id
            ]
            assert len(user_trains) >= 2

    def test_train_log_consistent_with_sessions(self, setup):
        _, synthetic, _ = setup
        split = split_train_test(synthetic)
        ids = sorted(
            r.record_id for s in split.train_sessions for r in s
        )
        assert ids == list(range(len(split.train_log)))

    def test_no_session_in_both(self, setup):
        _, synthetic, _ = setup
        split = split_train_test(synthetic)
        train_ids = {s.session_id for s in split.train_sessions}
        test_ids = {s.session_id for s in split.test_sessions}
        assert not train_ids & test_ids

    def test_invalid_args(self, setup):
        _, synthetic, _ = setup
        with pytest.raises(ValueError):
            split_train_test(synthetic, n_test_sessions=0)
        with pytest.raises(ValueError):
            split_train_test(synthetic, min_train_sessions=0)


class TestEvaluateSuggester:
    def test_curves_over_ks(self, setup):
        _, synthetic, oracle = setup
        frw = build_baseline("FRW", synthetic.log)
        diversity = DiversityMetric(synthetic.log, oracle)
        relevance = RelevanceMetric(oracle)
        queries = [r.query for r in synthetic.log[:30] if r.has_click][:10]
        result = evaluate_suggester(
            frw, queries, ks=[1, 3, 5], diversity=diversity, relevance=relevance
        )
        assert set(result["diversity"]) <= {1, 3, 5}
        assert set(result["relevance"]) <= {1, 3, 5}
        assert 0.0 <= result["coverage"][0] <= 1.0
        for value in result["relevance"].values():
            assert 0.0 <= value <= 1.0

    def test_empty_queries(self, setup):
        _, synthetic, _ = setup
        frw = build_baseline("FRW", synthetic.log)
        result = evaluate_suggester(frw, [], ks=[1])
        assert result["coverage"][0] == 0.0


class TestEvaluatePersonalized:
    def test_ppr_curves(self, setup):
        world, synthetic, oracle = setup
        split = split_train_test(synthetic, n_test_sessions=2)
        pht = build_baseline("PHT", split.train_log)
        ppr = PPRMetric(world.web)
        result = evaluate_personalized(
            pht, split.test_sessions[:20], ks=[1, 5], ppr=ppr
        )
        assert set(result["ppr"]) <= {1, 5}
        assert 0.0 <= result["coverage"][0] <= 1.0


class TestMeasureLatency:
    def test_measures(self, setup):
        _, synthetic, _ = setup
        frw = build_baseline("FRW", synthetic.log)
        queries = [r.query for r in synthetic.log[:5]]
        result = measure_latency(frw, queries, k=5)
        assert result.name == "FRW"
        assert result.n_queries == 5
        assert result.total_seconds >= 0
        assert result.mean_seconds == pytest.approx(
            result.total_seconds / 5
        )

    def test_relative(self, setup):
        _, synthetic, _ = setup
        frw = build_baseline("FRW", synthetic.log)
        queries = [r.query for r in synthetic.log[:3]]
        a = measure_latency(frw, queries)
        b = measure_latency(frw, queries)
        if a.mean_seconds > 0:
            assert b.relative_to(a) > 0

    def test_empty_workload_rejected(self, setup):
        _, synthetic, _ = setup
        frw = build_baseline("FRW", synthetic.log)
        with pytest.raises(ValueError):
            measure_latency(frw, [])
