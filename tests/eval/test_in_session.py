"""Tests for repro.eval.harness.evaluate_in_session."""

import pytest

from repro.baselines.base import Suggester
from repro.eval.harness import evaluate_in_session
from repro.eval.ppr import PPRMetric
from repro.logs.schema import QueryRecord, Session


class _Recorder(Suggester):
    """Test double: records its call arguments, returns a fixed list."""

    name = "recorder"

    def __init__(self, output):
        self.calls = []
        self._output = output

    def suggest(self, query, k=10, user_id=None, context=(), timestamp=0.0):
        self.calls.append(
            {
                "query": query,
                "user_id": user_id,
                "context": list(context),
                "timestamp": timestamp,
            }
        )
        return list(self._output[:k])


def make_session(session_id, user, queries, t0=0.0):
    records = [
        QueryRecord(user, q, t0 + 60.0 * i) for i, q in enumerate(queries)
    ]
    return Session(session_id, user, records)


@pytest.fixture
def ppr(table1_log):
    from repro.synth.world import make_world

    return PPRMetric(make_world(seed=0).web)


class TestEvaluateInSession:
    def test_uses_last_query_and_context(self, ppr):
        recorder = _Recorder(["x", "y"])
        session = make_session("s", "u", ["first", "second", "third"])
        evaluate_in_session(recorder, [session], ks=[2], ppr=ppr)
        (call,) = recorder.calls
        assert call["query"] == "third"
        assert [r.query for r in call["context"]] == ["first", "second"]
        assert call["user_id"] == "u"
        assert call["timestamp"] == session.records[-1].timestamp

    def test_single_query_sessions_skipped(self, ppr):
        recorder = _Recorder(["x"])
        short = make_session("s", "u", ["only"])
        result = evaluate_in_session(recorder, [short], ks=[1], ppr=ppr)
        assert recorder.calls == []
        assert result["coverage"][0] == 0.0

    def test_coverage_counts_answered_eligible_sessions(self, ppr):
        class _Sometimes(Suggester):
            name = "sometimes"

            def suggest(self, query, k=10, user_id=None, context=(),
                        timestamp=0.0):
                return ["x"] if query == "yes" else []

        sessions = [
            make_session("a", "u", ["q", "yes"]),
            make_session("b", "u", ["q", "no"], t0=10_000),
        ]
        result = evaluate_in_session(_Sometimes(), sessions, ks=[1], ppr=ppr)
        assert result["coverage"][0] == 0.5

    def test_empty_session_list(self, ppr):
        result = evaluate_in_session(_Recorder(["x"]), [], ks=[1], ppr=ppr)
        assert result["coverage"][0] == 0.0
        assert result["ppr"] == {}
