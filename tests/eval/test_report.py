"""Tests for repro.eval.report (small-scale smoke of the full battery)."""

import pytest

from repro.eval.report import Report, ReportConfig, run_report


@pytest.fixture(scope="module")
def tiny_report():
    config = ReportConfig(
        n_users=10,
        mean_sessions_per_user=6,
        n_test_queries=8,
        n_topics=3,
        gibbs_iterations=4,
        topic_models=("LDA", "UPM"),
        seed=5,
    )
    return run_report(config)


class TestReportConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 1},
            {"ks": ()},
            {"topic_models": ("GPT",)},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReportConfig(**kwargs)


class TestRunReport:
    def test_all_sections_populated(self, tiny_report):
        assert set(tiny_report.fig3_diversity) == {
            "PQS-DA", "FRW", "BRW", "HT", "DQS",
        }
        assert set(tiny_report.fig4_perplexity) == {"LDA", "UPM"}
        assert "PQS-DA" in tiny_report.fig5_ppr
        assert "CM" in tiny_report.fig6_hpr
        assert tiny_report.significance

    def test_curves_cover_requested_ks(self, tiny_report):
        ks = set(tiny_report.config.ks)
        for curve in tiny_report.fig3_diversity.values():
            assert set(curve) <= ks

    def test_metric_values_bounded(self, tiny_report):
        for rows in (
            tiny_report.fig3_diversity,
            tiny_report.fig3_relevance,
            tiny_report.fig5_diversity,
            tiny_report.fig5_ppr,
            tiny_report.fig6_hpr,
        ):
            for curve in rows.values():
                for value in curve.values():
                    assert 0.0 <= value <= 1.0

    def test_perplexities_positive(self, tiny_report):
        for value in tiny_report.fig4_perplexity.values():
            assert value > 1.0


class TestMarkdown:
    def test_renders_all_sections(self, tiny_report):
        markdown = tiny_report.to_markdown()
        for heading in (
            "# PQS-DA evaluation report",
            "Fig. 3 — Diversity@k",
            "Fig. 3 — Relevance@k",
            "Fig. 4 — predictive perplexity",
            "Fig. 5 — Diversity@k",
            "Fig. 5 — PPR@k",
            "Fig. 6 — HPR@k",
            "Significance",
        ):
            assert heading in markdown

    def test_tables_well_formed(self, tiny_report):
        markdown = tiny_report.to_markdown()
        lines = markdown.splitlines()
        # Every table header is followed by a separator row.
        for i, line in enumerate(lines):
            if line.startswith("| method |"):
                assert lines[i + 1].startswith("|---")

    def test_empty_report_renders(self):
        report = Report(config=ReportConfig())
        markdown = report.to_markdown()
        assert "# PQS-DA evaluation report" in markdown
