"""EfficiencyResult contract and the latency-measurement harness."""

import math

import pytest

from repro.baselines.base import Suggester, SuggestRequest
from repro.eval.efficiency import (
    EfficiencyResult,
    measure_batch_latency,
    measure_latency,
)


def _result(mean: float) -> EfficiencyResult:
    return EfficiencyResult(
        name="x", n_queries=10, total_seconds=mean * 10, mean_seconds=mean
    )


class TestRelativeTo:
    def test_normal_ratio(self):
        assert _result(0.02).relative_to(_result(0.01)) == pytest.approx(2.0)

    def test_zero_baseline_is_inf(self):
        """Sub-resolution baseline: the comparison is unboundedly slower.

        A coarse platform clock can measure a trivial ``--quick`` workload
        as exactly 0.0s; that used to raise and kill the whole bench run.
        """
        assert _result(0.01).relative_to(_result(0.0)) == math.inf

    def test_both_zero_is_one(self):
        assert _result(0.0).relative_to(_result(0.0)) == 1.0

    def test_negative_baseline_still_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            _result(0.01).relative_to(_result(-0.001))


class _CountingSuggester(Suggester):
    """Counts calls so warm-up behaviour is observable."""

    name = "counting"

    def __init__(self) -> None:
        self.calls: list[str] = []

    def suggest(self, query, k=10, user_id=None, context=(), timestamp=0.0):
        self.calls.append(query)
        return [f"{query} s{i}" for i in range(k)]


class TestMeasureLatency:
    def test_counts_and_warm_up(self):
        suggester = _CountingSuggester()
        result = measure_latency(suggester, ["a", "b"], k=3)
        assert result.n_queries == 2
        # warm-up repeats the first query before the timed pass
        assert suggester.calls == ["a", "a", "b"]
        assert result.total_seconds >= 0.0
        assert result.mean_seconds == pytest.approx(result.total_seconds / 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            measure_latency(_CountingSuggester(), [])


class TestMeasureBatchLatency:
    def test_warms_only_first_request(self):
        """The documented contract: warm-up serves ``requests[:1]`` only."""
        suggester = _CountingSuggester()
        requests = [SuggestRequest(query=q, k=3) for q in ("a", "b", "c")]
        result = measure_batch_latency(suggester, requests)
        assert suggester.calls == ["a", "a", "b", "c"]
        assert result.n_queries == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            measure_batch_latency(_CountingSuggester(), [])
