"""Prequential (predict-then-ingest) evaluation over the streaming path."""

import pytest

from repro.core import PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.eval.harness import evaluate_prequential, split_train_test
from repro.eval.ppr import PPRMetric
from repro.graphs.compact import CompactConfig
from repro.stream import IngestConfig, streaming_pqsda
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world


@pytest.fixture(scope="module")
def setup():
    world = make_world(seed=0)
    synthetic = generate_log(
        world, GeneratorConfig(n_users=20, mean_sessions_per_user=8, seed=13)
    )
    return world, synthetic


def _streaming(split):
    return streaming_pqsda(
        split.train_log,
        config=PQSDAConfig(
            compact=CompactConfig(size=40),
            diversify=DiversifyConfig(k=8, candidate_pool=15),
            personalize=False,
        ),
        ingest=IngestConfig(batch_size=32, clean=False),
    )


class TestEvaluatePrequential:
    def test_windows_and_overall_curves(self, setup):
        world, synthetic = setup
        split = split_train_test(synthetic, n_test_sessions=3)
        suggester, ingestor, manager = _streaming(split)
        ppr = PPRMetric(world.web)
        result = evaluate_prequential(
            suggester,
            ingestor,
            split.test_sessions,
            ks=[1, 5],
            ppr=ppr,
            n_windows=3,
        )
        assert 0.0 < result["overall"]["coverage"][0] <= 1.0
        assert set(result["overall"]["ppr"]) <= {1, 5}
        for value in result["overall"]["ppr"].values():
            assert 0.0 <= value <= 1.0
        assert len(result["windows"]) == 3
        assert sum(w["sessions"] for w in result["windows"]) == len(
            split.test_sessions
        )
        for earlier, later in zip(result["windows"], result["windows"][1:]):
            assert earlier["start"] <= later["start"]
            assert earlier["end"] <= later["end"]

    def test_sessions_are_ingested_as_replayed(self, setup):
        _, synthetic = setup
        split = split_train_test(synthetic, n_test_sessions=2)
        suggester, ingestor, manager = _streaming(split)
        test_records = sum(len(s) for s in split.test_sessions)
        evaluate_prequential(
            suggester, ingestor, split.test_sessions, ks=[5], n_windows=2
        )
        final = manager.current()
        assert final.epoch_id == len(split.test_sessions)
        assert len(final.log) == len(split.train_log) + test_records

    def test_empty_sessions(self, setup):
        _, synthetic = setup
        split = split_train_test(synthetic, n_test_sessions=2)
        suggester, ingestor, _ = _streaming(split)
        result = evaluate_prequential(suggester, ingestor, [], ks=[5])
        assert result == {"overall": {"coverage": {0: 0.0}}, "windows": []}

    def test_rejects_bad_windows(self, setup):
        _, synthetic = setup
        split = split_train_test(synthetic, n_test_sessions=2)
        suggester, ingestor, _ = _streaming(split)
        with pytest.raises(ValueError, match="n_windows"):
            evaluate_prequential(
                suggester, ingestor, split.test_sessions, ks=[5], n_windows=0
            )
