"""Tests for repro.eval.significance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.significance import (
    PairedComparison,
    paired_bootstrap,
    sign_test,
)


def shifted_samples(n=60, shift=0.3, seed=0):
    rng = np.random.default_rng(seed)
    b = rng.normal(0.5, 0.1, size=n)
    a = b + shift + rng.normal(0, 0.02, size=n)
    return a, b


class TestPairedBootstrap:
    def test_clear_difference_significant(self):
        a, b = shifted_samples()
        result = paired_bootstrap(a, b, seed=1)
        assert result.delta == pytest.approx(0.3, abs=0.05)
        assert result.p_value < 0.01
        assert result.significant()

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(2)
        base = rng.normal(0.5, 0.1, size=80)
        noise = base + rng.normal(0, 0.15, size=80)
        result = paired_bootstrap(noise, base, seed=3)
        assert result.p_value > 0.05

    def test_identical_samples(self):
        a = [0.5] * 20
        result = paired_bootstrap(a, a, seed=0)
        assert result.delta == 0.0
        assert result.p_value > 0.5

    def test_deterministic_given_seed(self):
        a, b = shifted_samples(shift=0.05)
        r1 = paired_bootstrap(a, b, seed=7)
        r2 = paired_bootstrap(a, b, seed=7)
        assert r1.p_value == r2.p_value

    def test_means_reported(self):
        a, b = shifted_samples()
        result = paired_bootstrap(a, b, seed=0)
        assert result.mean_a == pytest.approx(float(np.mean(a)))
        assert result.mean_b == pytest.approx(float(np.mean(b)))
        assert result.n_pairs == len(a)

    @pytest.mark.parametrize(
        "a,b",
        [([], []), ([1.0], [1.0, 2.0])],
    )
    def test_invalid_pairs(self, a, b):
        with pytest.raises(ValueError):
            paired_bootstrap(a, b)

    def test_min_resamples(self):
        with pytest.raises(ValueError):
            paired_bootstrap([1.0], [0.5], n_resamples=10)


class TestSignTest:
    def test_all_wins_significant(self):
        a = [1.0] * 12
        b = [0.0] * 12
        result = sign_test(a, b)
        assert result.p_value == pytest.approx(2 / 2**12)
        assert result.significant()

    def test_balanced_not_significant(self):
        a = [1.0, 0.0] * 10
        b = [0.0, 1.0] * 10
        result = sign_test(a, b)
        assert result.p_value > 0.5

    def test_ties_dropped(self):
        # 5 ties plus 6 wins: p computed over the 6 informative pairs.
        a = [0.5] * 5 + [1.0] * 6
        b = [0.5] * 5 + [0.0] * 6
        result = sign_test(a, b)
        assert result.p_value == pytest.approx(2 / 2**6)

    def test_all_ties(self):
        result = sign_test([0.5] * 4, [0.5] * 4)
        assert result.p_value == 1.0


class TestPairedComparison:
    def test_significant_threshold(self):
        result = PairedComparison(1.0, 0.0, 1.0, 0.04, 10)
        assert result.significant(0.05)
        assert not result.significant(0.01)

    def test_alpha_validated(self):
        result = PairedComparison(1.0, 0.0, 1.0, 0.04, 10)
        with pytest.raises(ValueError):
            result.significant(0.0)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=40
    ),
    st.integers(min_value=0, max_value=10**6),
)
def test_bootstrap_pvalue_in_unit_interval(values, seed):
    rng = np.random.default_rng(seed)
    other = np.clip(
        np.asarray(values) + rng.normal(0, 0.1, len(values)), 0, 1
    )
    result = paired_bootstrap(values, other, n_resamples=200, seed=seed)
    assert 0.0 < result.p_value <= 1.0
