"""Shared fixtures: the paper's Table I example log and small synthetic logs."""

import pytest

from repro.logs.schema import QueryRecord, parse_timestamp
from repro.logs.storage import QueryLog


@pytest.fixture
def table1_log() -> QueryLog:
    """The paper's Table I, verbatim.

    Three users, seven submissions; q3 has no click and q4 has no timestamp in
    the paper (we give it one inside u2's session window).
    """
    rows = [
        ("u1", "sun", "www.java.com", "2012-12-12 11:12:41"),
        ("u1", "sun java", "java.sun.com", "2012-12-12 11:13:01"),
        ("u1", "jvm download", None, "2012-12-12 11:14:21"),
        ("u2", "sun", "www.suncellular.com", "2012-12-13 07:13:21"),
        ("u2", "solar cell", "en.wikipedia.org/wiki/solar_cell", "2012-12-13 07:14:21"),
        ("u3", "sun oracle", "www.oracle.com", "2012-12-14 14:35:14"),
        ("u3", "java", "www.java.com", "2012-12-14 14:36:26"),
    ]
    return QueryLog(
        QueryRecord(
            user_id=user,
            query=query,
            timestamp=parse_timestamp(stamp),
            clicked_url=url,
        )
        for user, query, url, stamp in rows
    )
